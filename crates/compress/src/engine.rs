//! Pluggable streaming decompression engines (Fig. 1, right).
//!
//! The paper's central observation is that *online weight decompression is
//! the hot loop of compressed LLM inference*: every weight tile fetched from
//! memory must be dequantized, expanded and scaled before the TMUL can
//! consume it. This module turns the single hardcoded scalar path into an
//! enumerable backend axis behind one trait.
//!
//! # The streaming, zero-copy contract
//!
//! [`DecompressEngine::decompress_tile_into`] never allocates on the hot
//! path: the caller owns a reusable output [`DenseTile`] and a
//! [`DecompressScratch`] holding the unpacked-code and group-scale buffers,
//! and every backend is required to produce **bit-exact** output — the same
//! 512 BF16 bit patterns the scalar reference produces. This mirrors the
//! hardware contract of Fig. 1: whatever circuit performs dequantization,
//! the TMUL must see identical dense BF16 tiles.
//!
//! # Backends and their Fig. 1 correspondence
//!
//! * [`ScalarEngine`] — the functional ground truth: one dense position at a
//!   time, a running nonzero counter standing in for the prefix sum. This is
//!   the per-element loop a naive CPU implementation executes.
//! * [`WordParallelEngine`] — the software analogue of DECA's POPCNT +
//!   parallel-prefix-sum + crossbar datapath (§6.1): it walks the bitmask as
//!   64-bit words, skips zero words entirely, locates nonzeros with
//!   count-trailing-zeros, and dequantizes through a precomputed per-format
//!   LUT array instead of re-deriving tables.
//! * [`ParallelMatrixEngine`] — whole-matrix decompression fanned out over
//!   OS threads with `std::thread::scope`, one disjoint band of tile rows
//!   per worker: the software stand-in for one DECA PE per core working on a
//!   Parlooper partition.
//! * [`SimdEngine`] — explicit vectorization of the same datapath:
//!   LUT dequantization as 8-lane gathers, sparse expansion as one
//!   byte-shuffle per 8 mask bits, and the MX scale multiply as 8-lane f32
//!   FMA-free multiplies rounded back to BF16 in the integer domain. The
//!   software analogue of giving the decompress pipeline real SIMD lanes
//!   instead of one ALU.
//! * [`AutoTunedEngine`] — a dispatcher that micro-benchmarks the fixed
//!   backends per tile class at construction and routes every tile/matrix to
//!   the measured winner (see [`CalibrationTable`]).
//!
//! # Feature detection and the fallback contract
//!
//! [`SimdEngine`] never assumes ISA support at compile time: the AVX2 path
//! is compiled only on `x86_64` and entered only when
//! `is_x86_feature_detected!("avx2")` reports support at runtime. Every
//! other combination — non-x86 hosts, x86 hosts without AVX2, or an engine
//! constructed with [`SimdEngine::portable`] — takes the portable chunked
//! fallback, which is written in safe Rust over `u64` bitmask words and
//! 4-lane code chunks. Both paths are bit-exact against [`ScalarEngine`],
//! and the fallback is itself regression-tested on AVX2 hosts by forcing it
//! with [`SimdEngine::portable`]. Tiles whose scale metadata the vector
//! kernels cannot reproduce exactly (non-finite forged scales, scale groups
//! not divisible by the 16-lane chunk) are routed to the fallback per tile,
//! so eligibility is a pure speed decision, never a correctness one.
//!
//! [`EngineKind`] names the backends so that higher layers (executor,
//! simulator, LLM estimator, benchmarks) can record *which* engine produced
//! or validated a result.

use deca_numerics::{Bf16, DequantTable, QuantFormat};

use crate::{
    CompressError, CompressedMatrix, CompressedTile, DenseTile, WeightMatrix, TILE_COLS,
    TILE_ELEMS, TILE_ROWS,
};

/// Precomputed dequantization tables for every ≤8-bit quantized format,
/// indexed by format — the replacement for the interior-mutable linear-scan
/// LUT cache the reference decompressor used to carry.
///
/// All tables are built eagerly at construction (a few KB in total), so
/// lookups are a slice index, the structure is `Sync`, and no tile ever pays
/// for table construction.
#[derive(Debug, Clone, PartialEq)]
pub struct FormatLuts {
    tables: Vec<DequantTable>,
}

/// Named formats with a fixed slot (everything except `Custom`).
const NAMED_SLOTS: usize = 5;

fn lut_slot(format: QuantFormat) -> Option<usize> {
    match format {
        QuantFormat::Bf16 => None,
        QuantFormat::Bf8 => Some(0),
        QuantFormat::E4m3 => Some(1),
        QuantFormat::Fp4 => Some(2),
        QuantFormat::Int8 => Some(3),
        QuantFormat::Int4 => Some(4),
        QuantFormat::Custom { exp_bits, man_bits } => custom_combinations()
            .position(|combo| combo == (exp_bits, man_bits))
            .map(|i| NAMED_SLOTS + i),
    }
}

/// Every valid `Custom { exp_bits, man_bits }` combination that fits in a
/// LUT (1 sign + exp + man ≤ 8 bits), in deterministic order.
fn custom_combinations() -> impl Iterator<Item = (u8, u8)> {
    (1u8..=5).flat_map(|e| (0u8..=6).filter_map(move |m| (1 + e + m <= 8).then_some((e, m))))
}

impl FormatLuts {
    /// Builds the tables for every supported ≤8-bit format.
    #[must_use]
    pub fn precomputed() -> Self {
        let mut tables = vec![
            DequantTable::for_format(QuantFormat::Bf8),
            DequantTable::for_format(QuantFormat::E4m3),
            DequantTable::for_format(QuantFormat::Fp4),
            DequantTable::for_format(QuantFormat::Int8),
            DequantTable::for_format(QuantFormat::Int4),
        ];
        for (exp_bits, man_bits) in custom_combinations() {
            tables.push(DequantTable::for_format(QuantFormat::Custom {
                exp_bits,
                man_bits,
            }));
        }
        FormatLuts { tables }
    }

    /// The process-wide shared instance, built once on first use. The
    /// tables are immutable and a pure function of the formats, so every
    /// engine and decompressor shares them instead of re-deriving ~30
    /// tables per construction.
    #[must_use]
    pub fn shared() -> &'static FormatLuts {
        static SHARED: std::sync::OnceLock<FormatLuts> = std::sync::OnceLock::new();
        SHARED.get_or_init(FormatLuts::precomputed)
    }

    /// The dequantization table for `format`, or `None` for BF16 (which
    /// bypasses the LUTs entirely).
    ///
    /// # Panics
    ///
    /// Panics for non-BF16 formats wider than 8 bits, which have no LUT —
    /// the same contract as [`DequantTable::for_format`].
    #[must_use]
    pub fn table(&self, format: QuantFormat) -> Option<&DequantTable> {
        if format == QuantFormat::Bf16 {
            return None;
        }
        let slot =
            lut_slot(format).unwrap_or_else(|| panic!("no dequantization LUT for format {format}"));
        Some(&self.tables[slot])
    }

    /// Dequantizes one code of `format` (BF16 codes pass through as raw bit
    /// patterns), exactly as the reference decompressor does.
    #[must_use]
    pub fn dequantize(&self, format: QuantFormat, code: u16) -> Bf16 {
        match self.table(format) {
            None => Bf16::from_bits(code),
            Some(table) => table.lookup(code as u8),
        }
    }
}

impl Default for FormatLuts {
    fn default() -> Self {
        FormatLuts::precomputed()
    }
}

/// Reusable scratch buffers for streaming decompression: the unpacked
/// nonzero codes and the per-group scales promoted to BF16. Create one per
/// worker and pass it to every [`DecompressEngine::decompress_tile_into`]
/// call — no per-tile allocation survives after the buffers warm up.
#[derive(Debug, Default, Clone)]
pub struct DecompressScratch {
    /// Unpacked nonzero codes of the tile being decompressed.
    codes: Vec<u16>,
    /// Per-group scale factors as BF16 (empty unless group-quantized).
    group_scales: Vec<Bf16>,
    /// Dequantized nonzero values as raw BF16 bits ([`SimdEngine`] only),
    /// zero-padded so vector loads past the last nonzero stay in bounds.
    values: Vec<u16>,
    /// Whole-tile output staging as raw BF16 bits ([`SimdEngine`] only).
    bits: Vec<u16>,
}

impl DecompressScratch {
    /// Creates empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        DecompressScratch::default()
    }

    /// The codes unpacked by the most recent tile decompression.
    #[must_use]
    pub fn codes(&self) -> &[u16] {
        &self.codes
    }

    /// Unpacks a tile's nonzero codes into this scratch's code buffer and
    /// returns them — the entry point for external streaming consumers
    /// (e.g. the vOp pipeline) that share the zero-copy contract.
    pub fn unpack<'s>(&'s mut self, tile: &CompressedTile) -> &'s [u16] {
        tile.unpack_nonzeros_into(&mut self.codes);
        &self.codes
    }
}

/// A streaming tile/matrix decompression backend.
///
/// Implementations must be bit-exact with respect to [`ScalarEngine`]: for
/// any consistent [`CompressedTile`], `decompress_tile_into` must produce a
/// [`DenseTile`] whose 512 BF16 bit patterns are identical to the scalar
/// reference's, and must reject inconsistent tiles with
/// [`CompressError::CorruptTile`].
pub trait DecompressEngine: std::fmt::Debug + Send + Sync {
    /// A short stable name identifying the backend (used in reports,
    /// benchmark baselines and error messages).
    fn name(&self) -> &'static str;

    /// Decompresses one tile into the caller-provided output buffer using
    /// the caller-provided scratch space. The output tile is fully
    /// overwritten (zeros included).
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::CorruptTile`] if the tile's memory
    /// structures disagree (bitmask popcount vs. stored codes, dense code
    /// count vs. tile size).
    fn decompress_tile_into(
        &self,
        tile: &CompressedTile,
        scratch: &mut DecompressScratch,
        out: &mut DenseTile,
    ) -> Result<(), CompressError>;

    /// Decompresses a whole matrix into a caller-provided dense matrix,
    /// streaming tile by tile through one reused tile buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidShape`] if `out` does not match the
    /// matrix dimensions, and propagates tile-level errors.
    fn decompress_matrix_into(
        &self,
        matrix: &CompressedMatrix,
        out: &mut WeightMatrix,
    ) -> Result<(), CompressError> {
        check_output_shape(matrix, out)?;
        let mut tile = DenseTile::zero();
        let mut scratch = DecompressScratch::new();
        for tr in 0..matrix.tile_rows() {
            for tc in 0..matrix.tile_cols() {
                self.decompress_tile_into(matrix.tile(tr, tc), &mut scratch, &mut tile)?;
                store_tile(out, tr, tc, &tile);
            }
        }
        Ok(())
    }

    /// Convenience wrapper allocating the output matrix.
    ///
    /// # Errors
    ///
    /// Propagates tile-level errors.
    fn decompress_matrix(&self, matrix: &CompressedMatrix) -> Result<WeightMatrix, CompressError> {
        let mut out = WeightMatrix::zeros(matrix.rows(), matrix.cols());
        self.decompress_matrix_into(matrix, &mut out)?;
        Ok(out)
    }
}

fn check_output_shape(matrix: &CompressedMatrix, out: &WeightMatrix) -> Result<(), CompressError> {
    if out.rows() != matrix.rows() || out.cols() != matrix.cols() {
        return Err(CompressError::InvalidShape {
            rows: out.rows(),
            cols: out.cols(),
            reason: "output matrix shape does not match the compressed matrix",
        });
    }
    Ok(())
}

/// Writes a decompressed tile into its matrix position, clipping at the
/// matrix edge (tiles past the edge are zero-padded).
fn store_tile(out: &mut WeightMatrix, tr: usize, tc: usize, tile: &DenseTile) {
    let rows = out.rows();
    let cols = out.cols();
    let row_base = tr * TILE_ROWS;
    let band = &mut out.data_mut()[row_base * cols..];
    store_tile_in_band(band, rows - row_base, cols, tc, tile);
}

/// Writes a tile into a band of `band_rows` matrix rows starting at the
/// tile's row base. `band` is the row-major storage of those rows.
fn store_tile_in_band(
    band: &mut [f32],
    band_rows: usize,
    cols: usize,
    tc: usize,
    tile: &DenseTile,
) {
    let col_base = tc * TILE_COLS;
    let tile_cols = TILE_COLS.min(cols.saturating_sub(col_base));
    for (r, row) in tile.elements().chunks_exact(TILE_COLS).enumerate() {
        if r >= band_rows {
            break;
        }
        let dst = &mut band[r * cols + col_base..r * cols + col_base + tile_cols];
        for (d, v) in dst.iter_mut().zip(&row[..tile_cols]) {
            *d = v.to_f32();
        }
    }
}

/// What a backend needs to decompress one validated tile: the shared
/// dequantization table (if any), the scale-group size and the raw scales.
struct TilePlan<'a> {
    table: Option<&'a DequantTable>,
    group: usize,
    scales: &'a [deca_numerics::mx::ScaleE8M0],
}

/// Validates a tile's three memory structures (§5.2) via
/// [`CompressedTile::validate`], unpacks its codes into scratch, and
/// returns the dequantization plan shared by all backends — a corrupted
/// weight stream must fault here, never index out of bounds or silently
/// decompress unscaled.
fn prepare<'a>(
    luts: &'a FormatLuts,
    tile: &'a CompressedTile,
    scratch: &mut DecompressScratch,
) -> Result<TilePlan<'a>, CompressError> {
    tile.validate()?;
    let scheme = tile.scheme();
    tile.unpack_nonzeros_into(&mut scratch.codes);
    Ok(TilePlan {
        table: luts.table(scheme.format()),
        group: scheme.group_size().unwrap_or(usize::MAX),
        scales: tile.scales(),
    })
}

/// The scalar reference backend: per-element dequantize → expand → scale,
/// exactly the semantics of the original `Decompressor` but borrowing the
/// caller's buffers instead of allocating per tile.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScalarEngine;

impl ScalarEngine {
    /// Creates the engine (the per-format LUTs are shared process-wide).
    #[must_use]
    pub fn new() -> Self {
        ScalarEngine
    }

    /// The precomputed per-format LUT array.
    #[must_use]
    pub fn luts(&self) -> &'static FormatLuts {
        FormatLuts::shared()
    }
}

impl DecompressEngine for ScalarEngine {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn decompress_tile_into(
        &self,
        tile: &CompressedTile,
        scratch: &mut DecompressScratch,
        out: &mut DenseTile,
    ) -> Result<(), CompressError> {
        let plan = prepare(self.luts(), tile, scratch)?;
        let value_of = |code: u16| match plan.table {
            Some(t) => t.lookup(code as u8),
            None => Bf16::from_bits(code),
        };
        out.fill_zero();
        if let Some(mask) = tile.bitmask() {
            let mut nz = 0usize;
            for pos in 0..TILE_ELEMS {
                if !mask.get(pos) {
                    continue;
                }
                let mut value = value_of(scratch.codes[nz]);
                if !plan.scales.is_empty() {
                    value = value * plan.scales[pos / plan.group].to_bf16();
                }
                out.set(pos / TILE_COLS, pos % TILE_COLS, value);
                nz += 1;
            }
        } else {
            for (pos, &code) in scratch.codes.iter().enumerate() {
                let mut value = value_of(code);
                if !plan.scales.is_empty() {
                    value = value * plan.scales[pos / plan.group].to_bf16();
                }
                out.set(pos / TILE_COLS, pos % TILE_COLS, value);
            }
        }
        Ok(())
    }
}

/// The word-parallel backend: the software analogue of DECA's POPCNT +
/// prefix-sum + crossbar datapath. The bitmask is consumed as 64-bit words
/// (zero words are skipped outright, nonzeros located with
/// count-trailing-zeros), group scales are promoted to BF16 once per tile,
/// and dequantization indexes the precomputed LUT array directly.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WordParallelEngine;

impl WordParallelEngine {
    /// Creates the engine (the per-format LUTs are shared process-wide).
    #[must_use]
    pub fn new() -> Self {
        WordParallelEngine
    }
}

impl DecompressEngine for WordParallelEngine {
    fn name(&self) -> &'static str {
        "word-parallel"
    }

    fn decompress_tile_into(
        &self,
        tile: &CompressedTile,
        scratch: &mut DecompressScratch,
        out: &mut DenseTile,
    ) -> Result<(), CompressError> {
        let plan = prepare(FormatLuts::shared(), tile, scratch)?;
        let (table, group) = (plan.table, plan.group);
        // Promote the group scales once per tile instead of once per element
        // (bit-exact: the per-element multiply uses the same BF16 value).
        scratch.group_scales.clear();
        scratch
            .group_scales
            .extend(plan.scales.iter().map(|s| s.to_bf16()));
        let group_scales = &scratch.group_scales[..];
        let codes = &scratch.codes[..];
        out.fill_zero();
        let dst = out.elements_mut();
        let value_of = |code: u16| match table {
            Some(t) => t.lookup(code as u8),
            None => Bf16::from_bits(code),
        };
        if let Some(mask) = tile.bitmask() {
            let mut nz = 0usize;
            for (wi, &word) in mask.words().iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let pos = wi * 64 + w.trailing_zeros() as usize;
                    let mut value = value_of(codes[nz]);
                    if !group_scales.is_empty() {
                        value = value * group_scales[pos / group];
                    }
                    dst[pos] = value;
                    nz += 1;
                    w &= w - 1;
                }
            }
        } else if group_scales.is_empty() {
            for (slot, &code) in dst.iter_mut().zip(codes) {
                *slot = value_of(code);
            }
        } else {
            for (pos, (slot, &code)) in dst.iter_mut().zip(codes).enumerate() {
                *slot = value_of(code) * group_scales[pos / group];
            }
        }
        Ok(())
    }
}

/// Whole-matrix decompression fanned out over OS threads: tile rows are
/// split into disjoint bands (each band is a contiguous row-major slice of
/// the output) and each worker streams its bands through an inner
/// [`WordParallelEngine`] with its own scratch and tile buffer.
#[derive(Debug, Default, Clone)]
pub struct ParallelMatrixEngine {
    inner: WordParallelEngine,
    threads: Option<usize>,
}

impl ParallelMatrixEngine {
    /// Creates the engine with as many workers as the host exposes.
    #[must_use]
    pub fn new() -> Self {
        ParallelMatrixEngine {
            inner: WordParallelEngine::new(),
            threads: None,
        }
    }

    /// Caps the worker count (useful for reproducible benchmarking).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one worker thread is required");
        self.threads = Some(threads);
        self
    }

    fn worker_count(&self, tile_rows: usize) -> usize {
        let available = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
        available.clamp(1, tile_rows.max(1))
    }
}

impl DecompressEngine for ParallelMatrixEngine {
    fn name(&self) -> &'static str {
        "parallel-matrix"
    }

    fn decompress_tile_into(
        &self,
        tile: &CompressedTile,
        scratch: &mut DecompressScratch,
        out: &mut DenseTile,
    ) -> Result<(), CompressError> {
        // Single tiles have no fan-out axis; delegate to the inner engine.
        self.inner.decompress_tile_into(tile, scratch, out)
    }

    fn decompress_matrix_into(
        &self,
        matrix: &CompressedMatrix,
        out: &mut WeightMatrix,
    ) -> Result<(), CompressError> {
        check_output_shape(matrix, out)?;
        let rows = matrix.rows();
        let cols = matrix.cols();
        let tile_rows = matrix.tile_rows();
        let tile_cols = matrix.tile_cols();
        let workers = self.worker_count(tile_rows);

        // One band of up to 16 matrix rows per tile row; bands are disjoint
        // contiguous slices of the row-major output, so the scoped threads
        // never alias.
        let bands: Vec<(usize, &mut [f32])> = out
            .data_mut()
            .chunks_mut(TILE_ROWS * cols)
            .enumerate()
            .collect();
        let mut groups: Vec<Vec<(usize, &mut [f32])>> = Vec::new();
        groups.resize_with(workers, Vec::new);
        for (i, band) in bands {
            groups[i % workers].push((i, band));
        }

        let results: Vec<Result<(), CompressError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .map(|group| {
                    scope.spawn(move || {
                        let mut tile = DenseTile::zero();
                        let mut scratch = DecompressScratch::new();
                        for (tr, band) in group {
                            let band_rows = (rows - tr * TILE_ROWS).min(TILE_ROWS);
                            for tc in 0..tile_cols {
                                self.inner.decompress_tile_into(
                                    matrix.tile(tr, tc),
                                    &mut scratch,
                                    &mut tile,
                                )?;
                                store_tile_in_band(band, band_rows, cols, tc, &tile);
                            }
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("decompression worker panicked"))
                .collect()
        });
        results.into_iter().collect()
    }
}

/// Explicitly vectorized dequant → expand → scale backend.
///
/// On `x86_64` hosts with AVX2 (checked at runtime, never assumed at
/// compile time) each tile takes a three-stage vector pipeline:
///
/// 1. **Dequantize** — codes are looked up 16 at a time through two 8-lane
///    `vpgatherdd` gathers into a `u32`-widened mirror of the shared
///    [`FormatLuts`] tables (BF16 codes pass through untouched).
/// 2. **Expand** — sparse tiles scatter the compacted values to their dense
///    positions one bitmask byte (8 positions) per `pshufb`, driven by a
///    256-entry precomputed shuffle-control table; cleared positions
///    zero-fill in the same shuffle, so the whole tile is written without a
///    separate memset.
/// 3. **Scale** — group-quantized tiles multiply 8 lanes at a time in f32
///    and round back to BF16 with the exact integer round-to-nearest-even
///    and NaN-quieting steps of `Bf16::from_f32`, keeping the output
///    bit-identical to [`ScalarEngine`].
///
/// Everywhere else — non-x86 hosts, x86 without AVX2, engines built with
/// [`SimdEngine::portable`], or tiles whose scale metadata the vector scale
/// pass cannot reproduce exactly — the portable chunked fallback runs: safe
/// Rust over `u64` bitmask words with the dequantization loop processed in
/// 4-lane chunks. Both paths satisfy the bit-exactness contract.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SimdEngine {
    force_portable: bool,
}

impl SimdEngine {
    /// Creates the engine; the vector path is chosen by runtime feature
    /// detection on first use.
    #[must_use]
    pub fn new() -> Self {
        SimdEngine {
            force_portable: false,
        }
    }

    /// Creates the engine with the portable chunked fallback forced on,
    /// regardless of host ISA support — the regression hook that keeps the
    /// fallback path tested on hosts where AVX2 would normally win.
    #[must_use]
    pub fn portable() -> Self {
        SimdEngine {
            force_portable: true,
        }
    }

    /// Whether this instance may use the AVX2 vector path (`false` off
    /// x86-64, on hosts without AVX2, or after [`SimdEngine::portable`]).
    #[must_use]
    pub fn uses_avx2(&self) -> bool {
        !self.force_portable && avx2_available()
    }
}

/// Runtime AVX2 support (always `false` off x86-64).
fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

impl DecompressEngine for SimdEngine {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn decompress_tile_into(
        &self,
        tile: &CompressedTile,
        scratch: &mut DecompressScratch,
        out: &mut DenseTile,
    ) -> Result<(), CompressError> {
        let plan = prepare(FormatLuts::shared(), tile, scratch)?;
        // Promote the group scales once per tile (bit-exact: the multiply
        // sees the same BF16 value the scalar engine promotes per element).
        scratch.group_scales.clear();
        scratch
            .group_scales
            .extend(plan.scales.iter().map(|s| s.to_bf16()));
        #[cfg(target_arch = "x86_64")]
        if self.uses_avx2()
            && simd_x86::plan_is_vectorizable(&plan)
            && simd_x86::try_decompress_tile(tile, &plan, scratch, out)
        {
            return Ok(());
        }
        portable::decompress_tile(tile, &plan, scratch, out);
        Ok(())
    }
}

/// The portable chunked fallback for [`SimdEngine`]: safe Rust over `u64`
/// bitmask words, with dequantization unrolled into 4-lane chunks for ILP.
/// Bit-exact with [`ScalarEngine`] on every scheme and every host.
mod portable {
    use deca_numerics::Bf16;

    use super::{DecompressScratch, TilePlan};
    use crate::{CompressedTile, DenseTile};

    pub(super) fn decompress_tile(
        tile: &CompressedTile,
        plan: &TilePlan<'_>,
        scratch: &mut DecompressScratch,
        out: &mut DenseTile,
    ) {
        let DecompressScratch {
            codes,
            group_scales,
            values,
            ..
        } = scratch;
        // Stage 1: dequantize the packed codes, four lanes per step.
        values.clear();
        match plan.table {
            Some(table) => {
                let mut chunks = codes.chunks_exact(4);
                for c in chunks.by_ref() {
                    values.extend_from_slice(&[
                        table.lookup(c[0] as u8).to_bits(),
                        table.lookup(c[1] as u8).to_bits(),
                        table.lookup(c[2] as u8).to_bits(),
                        table.lookup(c[3] as u8).to_bits(),
                    ]);
                }
                for &c in chunks.remainder() {
                    values.push(table.lookup(c as u8).to_bits());
                }
            }
            None => values.extend_from_slice(codes),
        }
        // Stage 2 + 3: expand along u64 bitmask words and apply scales.
        out.fill_zero();
        let dst = out.elements_mut();
        let group = plan.group;
        if let Some(mask) = tile.bitmask() {
            let mut nz = 0usize;
            for (wi, &word) in mask.words().iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let pos = wi * 64 + w.trailing_zeros() as usize;
                    let mut value = Bf16::from_bits(values[nz]);
                    if !group_scales.is_empty() {
                        value = value * group_scales[pos / group];
                    }
                    dst[pos] = value;
                    nz += 1;
                    w &= w - 1;
                }
            }
        } else if group_scales.is_empty() {
            for (slot, &bits) in dst.iter_mut().zip(values.iter()) {
                *slot = Bf16::from_bits(bits);
            }
        } else {
            for (pos, (slot, &bits)) in dst.iter_mut().zip(values.iter()).enumerate() {
                *slot = Bf16::from_bits(bits) * group_scales[pos / group];
            }
        }
    }
}

/// AVX2 vector kernels for [`SimdEngine`] — the one sanctioned
/// `unsafe_code` exception in this crate.
///
/// Safety architecture: the only entry point is [`try_decompress_tile`],
/// which re-checks `is_x86_feature_detected!("avx2")` immediately before
/// entering the `#[target_feature(enable = "avx2")]` kernels, so the ISA
/// precondition is established at the single `unsafe` call boundary. Inside
/// the kernels, `unsafe` is confined to pointer-based loads/stores/gathers,
/// each with its bounds argument documented; all staging buffers carry
/// [`LANE_PAD`] trailing zeros so full-width vector accesses past a logical
/// end stay in bounds.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code, clippy::cast_possible_wrap)]
mod simd_x86 {
    use core::arch::x86_64::{
        __m256, __m256i, _mm256_add_epi32, _mm256_and_si256, _mm256_blendv_epi8,
        _mm256_castps_si256, _mm256_castsi256_ps, _mm256_castsi256_si128, _mm256_cmp_ps,
        _mm256_cvtepu16_epi32, _mm256_extracti128_si256, _mm256_i32gather_epi32,
        _mm256_loadu_si256, _mm256_mul_ps, _mm256_or_si256, _mm256_packus_epi32,
        _mm256_permute4x64_epi64, _mm256_set1_epi32, _mm256_set1_ps, _mm256_slli_epi32,
        _mm256_srli_epi32, _mm256_storeu_si256, _mm_loadu_si128, _mm_shuffle_epi8,
        _mm_storeu_si128, _CMP_UNORD_Q,
    };
    use std::sync::OnceLock;

    use deca_numerics::Bf16;

    use super::{lut_slot, DecompressScratch, FormatLuts, TilePlan};
    use crate::{CompressedTile, DenseTile, TILE_ELEMS};

    /// Zero entries appended to staging buffers so full-width vector loads
    /// and stores past the logical end stay in bounds.
    const LANE_PAD: usize = 16;

    /// Whether the vector kernels reproduce this tile's scale semantics
    /// bit-exactly. Scale groups must align with the 16-lane chunks of the
    /// scale pass, and every scale must stay finite after BF16 promotion: a
    /// forged E8M0 code 255 promotes to +inf, and the vector pass —
    /// which multiplies *every* position, zeros included — would turn
    /// `0 × inf` into NaN where the scalar engine leaves an untouched zero.
    pub(super) fn plan_is_vectorizable(plan: &TilePlan<'_>) -> bool {
        plan.scales.is_empty()
            || (plan.group >= 16
                && plan.group.is_multiple_of(16)
                && plan.scales.iter().all(|s| s.to_bf16().to_f32().is_finite()))
    }

    /// Decompresses one vectorizable tile, returning `false` (having
    /// written nothing) when the host lacks AVX2.
    pub(super) fn try_decompress_tile(
        tile: &CompressedTile,
        plan: &TilePlan<'_>,
        scratch: &mut DecompressScratch,
        out: &mut DenseTile,
    ) -> bool {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return false;
        }
        // SAFETY: AVX2 support was verified on the line above, satisfying
        // the `#[target_feature(enable = "avx2")]` calling contract.
        unsafe { decompress_tile_avx2(tile, plan, scratch, out) };
        true
    }

    /// 256-entry `u32`-widened mirrors of [`FormatLuts::shared`]'s tables,
    /// slot for slot, as `vpgatherdd` sources (zero-extended BF16 bits).
    fn simd_luts() -> &'static [[u32; 256]] {
        static LUTS: OnceLock<Vec<[u32; 256]>> = OnceLock::new();
        LUTS.get_or_init(|| {
            FormatLuts::shared()
                .tables
                .iter()
                .map(|table| {
                    let mut lut = [0u32; 256];
                    for (slot, entry) in lut.iter_mut().zip(table.entries()) {
                        *slot = u32::from(entry.to_bits());
                    }
                    lut
                })
                .collect()
        })
    }

    #[target_feature(enable = "avx2")]
    fn decompress_tile_avx2(
        tile: &CompressedTile,
        plan: &TilePlan<'_>,
        scratch: &mut DecompressScratch,
        out: &mut DenseTile,
    ) {
        let DecompressScratch {
            codes,
            group_scales,
            values,
            bits,
        } = scratch;
        let slot = lut_slot(tile.scheme().format());
        match tile.bitmask() {
            Some(mask) => {
                // Sparse: dequantize the compacted run, then scatter it.
                dequant_codes(codes, slot, values);
                expand_sparse(mask.words(), values, bits);
            }
            // Dense: dequantize straight into the whole-tile staging.
            None => dequant_codes(codes, slot, bits),
        }
        if !group_scales.is_empty() {
            scale_bits(&mut bits[..TILE_ELEMS], group_scales, plan.group);
        }
        // Publish the staged bit patterns into the caller's tile.
        for (dst, &b) in out.elements_mut().iter_mut().zip(bits.iter()) {
            *dst = Bf16::from_bits(b);
        }
    }

    /// Dequantizes `codes` into `dst` (cleared first, `LANE_PAD` zeros
    /// appended): 16 codes per iteration through two 8-lane gathers, or a
    /// plain copy for BF16 passthrough (`slot == None`).
    #[target_feature(enable = "avx2")]
    fn dequant_codes(codes: &[u16], slot: Option<usize>, dst: &mut Vec<u16>) {
        dst.clear();
        let Some(slot) = slot else {
            dst.extend_from_slice(codes);
            dst.resize(codes.len() + LANE_PAD, 0);
            return;
        };
        let lut = &simd_luts()[slot];
        dst.resize(codes.len() + LANE_PAD, 0);
        let index_mask = _mm256_set1_epi32(0xFF);
        let base = lut.as_ptr().cast::<i32>();
        let mut i = 0usize;
        while i + 16 <= codes.len() {
            // SAFETY: `i + 16 <= codes.len()` bounds the 16-lane load, and
            // `dst` holds `codes.len() + LANE_PAD` entries so the 16-lane
            // store at `i` is in bounds. The gather indexes are masked to
            // 0..=255 against the 256-entry LUT.
            unsafe {
                let raw = _mm256_loadu_si256(codes.as_ptr().add(i).cast());
                let lo = _mm256_and_si256(
                    _mm256_cvtepu16_epi32(_mm256_castsi256_si128(raw)),
                    index_mask,
                );
                let hi = _mm256_and_si256(
                    _mm256_cvtepu16_epi32(_mm256_extracti128_si256::<1>(raw)),
                    index_mask,
                );
                let vlo = _mm256_i32gather_epi32::<4>(base, lo);
                let vhi = _mm256_i32gather_epi32::<4>(base, hi);
                // packus interleaves the 128-bit lanes; permute restores
                // element order (qwords 0,2,1,3).
                let packed = _mm256_packus_epi32(vlo, vhi);
                let fixed = _mm256_permute4x64_epi64::<0b11_01_10_00>(packed);
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), fixed);
            }
            i += 16;
        }
        for (d, &c) in dst[i..].iter_mut().zip(&codes[i..]) {
            *d = lut[usize::from(c) & 0xFF] as u16;
        }
    }

    /// `pshufb` control bytes for every bitmask byte: output lane `j` (two
    /// bytes per u16 lane) takes compacted source lane
    /// `popcount(mask & ((1 << j) - 1))` when bit `j` is set, and
    /// zero-fills (0x80 control) otherwise.
    static EXPAND_CTRL: [[u8; 16]; 256] = build_expand_ctrl();

    const fn build_expand_ctrl() -> [[u8; 16]; 256] {
        let mut ctrl = [[0u8; 16]; 256];
        let mut m = 0usize;
        while m < 256 {
            let mut src: u8 = 0;
            let mut j = 0usize;
            while j < 8 {
                if (m >> j) & 1 == 1 {
                    ctrl[m][2 * j] = 2 * src;
                    ctrl[m][2 * j + 1] = 2 * src + 1;
                    src += 1;
                } else {
                    ctrl[m][2 * j] = 0x80;
                    ctrl[m][2 * j + 1] = 0x80;
                }
                j += 1;
            }
            m += 1;
        }
        ctrl
    }

    /// Scatters the compacted `values` to their dense bitmask positions in
    /// `bits` (resized to `TILE_ELEMS + LANE_PAD`), 8 positions per
    /// shuffle. Every position is written — zeros come from the shuffle's
    /// zero-fill lanes — so no separate clear pass is needed.
    #[target_feature(enable = "avx2")]
    fn expand_sparse(words: &[u64], values: &[u16], bits: &mut Vec<u16>) {
        bits.clear();
        bits.resize(TILE_ELEMS + LANE_PAD, 0);
        let mut nz = 0usize;
        let mut pos = 0usize;
        for &word in words {
            for byte in word.to_le_bytes() {
                let ctrl = &EXPAND_CTRL[usize::from(byte)];
                // SAFETY: `values` carries `LANE_PAD` zeros past its
                // logical end and `nz` never exceeds the nonzero count, so
                // the 8-lane load at `nz` is in bounds; `pos < TILE_ELEMS`
                // (8 words × 8 bytes × 8 positions = TILE_ELEMS) and `bits`
                // holds `TILE_ELEMS + LANE_PAD` entries, bounding the
                // store; `ctrl` is a 16-byte array.
                unsafe {
                    let src = _mm_loadu_si128(values.as_ptr().add(nz).cast());
                    let shuffled = _mm_shuffle_epi8(src, _mm_loadu_si128(ctrl.as_ptr().cast()));
                    _mm_storeu_si128(bits.as_mut_ptr().add(pos).cast(), shuffled);
                }
                nz += byte.count_ones() as usize;
                pos += 8;
            }
        }
    }

    /// Multiplies every BF16 lane of `bits` by its group's scale, 16 lanes
    /// per step. Eligibility guarantees each 16-lane chunk falls inside one
    /// scale group (`group % 16 == 0`).
    #[target_feature(enable = "avx2")]
    fn scale_bits(bits: &mut [u16], group_scales: &[Bf16], group: usize) {
        let mut pos = 0usize;
        while pos + 16 <= bits.len() {
            let vscale = _mm256_set1_ps(group_scales[pos / group].to_f32());
            // SAFETY: `pos + 16 <= bits.len()` bounds both the 16-lane load
            // and the 16-lane store at `pos`.
            unsafe {
                let raw = _mm256_loadu_si256(bits.as_ptr().add(pos).cast());
                let lo = mul_round(_mm256_cvtepu16_epi32(_mm256_castsi256_si128(raw)), vscale);
                let hi = mul_round(
                    _mm256_cvtepu16_epi32(_mm256_extracti128_si256::<1>(raw)),
                    vscale,
                );
                let packed = _mm256_packus_epi32(lo, hi);
                let fixed = _mm256_permute4x64_epi64::<0b11_01_10_00>(packed);
                _mm256_storeu_si256(bits.as_mut_ptr().add(pos).cast(), fixed);
            }
            pos += 16;
        }
    }

    /// Multiplies 8 BF16 values (zero-extended into u32 lanes) by `vscale`
    /// in f32 and rounds back to BF16 bits, replicating `Bf16::from_f32`
    /// exactly: round-to-nearest-even via the `0x7FFF + lsb` bias in the
    /// integer domain, NaN products quieted by truncate-and-set-quiet-bit.
    #[target_feature(enable = "avx2")]
    fn mul_round(lanes: __m256i, vscale: __m256) -> __m256i {
        let value = _mm256_castsi256_ps(_mm256_slli_epi32::<16>(lanes));
        let product = _mm256_mul_ps(value, vscale);
        let bits = _mm256_castps_si256(product);
        let shifted = _mm256_srli_epi32::<16>(bits);
        let lsb = _mm256_and_si256(shifted, _mm256_set1_epi32(1));
        let biased = _mm256_add_epi32(_mm256_add_epi32(bits, _mm256_set1_epi32(0x7FFF)), lsb);
        let rounded = _mm256_srli_epi32::<16>(biased);
        let quiet = _mm256_or_si256(shifted, _mm256_set1_epi32(0x40));
        let is_nan = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_UNORD_Q>(product, product));
        _mm256_blendv_epi8(rounded, quiet, is_nan)
    }
}

/// The deterministic decision table behind [`AutoTunedEngine`]: which fixed
/// backend decompresses each tile class, and how many workers fan out
/// whole-matrix decompression.
///
/// Tile classes are keyed by three scheme properties that change which
/// datapath stage dominates: whether dequantization goes through a LUT,
/// whether the tile is sparse (expansion stage present), and whether it is
/// group-quantized (scale stage present). [`CalibrationTable::calibrate`]
/// fills the table by timing every fixed tile backend on one synthetic tile
/// per class; [`CalibrationTable::fixed`] builds a fully deterministic
/// override for tests. Because every backend is bit-exact, the choice only
/// ever affects speed, never output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalibrationTable {
    /// Winning tile backend per `(lut, sparse, scaled)` class.
    tile: [EngineKind; 8],
    /// Worker threads for whole-matrix fan-out (1 = stream in-thread).
    matrix_threads: usize,
}

impl CalibrationTable {
    fn index(lut: bool, sparse: bool, scaled: bool) -> usize {
        (usize::from(lut) << 2) | (usize::from(sparse) << 1) | usize::from(scaled)
    }

    /// A table routing every tile class to `kind` and fanning matrices out
    /// over `threads` workers — the deterministic override for tests.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`EngineKind::AutoTuned`] (the dispatcher cannot
    /// route to itself) or `threads` is zero.
    #[must_use]
    pub fn fixed(kind: EngineKind, threads: usize) -> Self {
        assert!(
            kind != EngineKind::AutoTuned,
            "calibration table entries must be fixed backends"
        );
        assert!(threads > 0, "at least one matrix worker is required");
        CalibrationTable {
            tile: [kind; 8],
            matrix_threads: threads,
        }
    }

    /// The backend chosen for a tile class.
    #[must_use]
    pub fn tile_choice(&self, lut: bool, sparse: bool, scaled: bool) -> EngineKind {
        self.tile[Self::index(lut, sparse, scaled)]
    }

    /// The tuned whole-matrix worker count.
    #[must_use]
    pub fn matrix_threads(&self) -> usize {
        self.matrix_threads
    }

    /// Micro-benchmarks every fixed tile backend on one synthetic tile per
    /// class (and streamed vs. fanned-out whole-matrix decompression) and
    /// records the winners. Timing-based, so the *choices* can vary across
    /// hosts — outputs never do, since all backends are bit-exact.
    #[must_use]
    pub fn calibrate() -> Self {
        use crate::{generator::WeightGenerator, CompressionScheme, Compressor};

        let class_scheme = |lut: bool, sparse: bool, scaled: bool| match (lut, sparse, scaled) {
            // BF16 passthrough has no group-quantized variant; calibrate
            // the scaled slot with the same scheme as the unscaled one.
            (false, false, _) => CompressionScheme::bf16_dense(),
            (false, true, _) => CompressionScheme::bf16_sparse(0.5),
            (true, false, false) => CompressionScheme::bf8_dense(),
            (true, true, false) => CompressionScheme::bf8_sparse(0.5),
            (true, false, true) => CompressionScheme::mxfp4(),
            (true, true, true) => CompressionScheme::mxfp4_sparse(0.5),
        };
        let candidates = [
            EngineKind::Scalar,
            EngineKind::WordParallel,
            EngineKind::Simd,
        ];
        let engines: Vec<Box<dyn DecompressEngine>> =
            candidates.iter().map(|k| k.build()).collect();
        let sample_dense = WeightGenerator::new(0xDECA).dense_matrix(TILE_ROWS, TILE_COLS);
        let mut tile = [EngineKind::WordParallel; 8];
        for lut in [false, true] {
            for sparse in [false, true] {
                for scaled in [false, true] {
                    let scheme = class_scheme(lut, sparse, scaled);
                    let sample = Compressor::new(scheme)
                        .compress_tile(&sample_dense.tile(0, 0))
                        .expect("calibration tile compresses");
                    let mut best = (f64::INFINITY, EngineKind::WordParallel);
                    for (kind, engine) in candidates.iter().zip(&engines) {
                        let secs = Self::time_tile(engine.as_ref(), &sample);
                        if secs < best.0 {
                            best = (secs, *kind);
                        }
                    }
                    tile[Self::index(lut, sparse, scaled)] = best.1;
                }
            }
        }

        let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let matrix_threads = if available <= 1 {
            1
        } else {
            let matrix = Compressor::new(CompressionScheme::bf8_sparse(0.5))
                .compress_matrix(&WeightGenerator::new(0xDECA).dense_matrix(128, 128))
                .expect("calibration matrix compresses");
            let streamed = Self::time_matrix(&WordParallelEngine::new(), &matrix);
            let fanned = Self::time_matrix(
                &ParallelMatrixEngine::new().with_threads(available),
                &matrix,
            );
            if fanned < streamed {
                available
            } else {
                1
            }
        };
        CalibrationTable {
            tile,
            matrix_threads,
        }
    }

    /// The process-wide calibration, measured once on first use so that
    /// constructing [`AutoTunedEngine`] in a loop stays cheap.
    #[must_use]
    pub fn shared() -> &'static CalibrationTable {
        static SHARED: std::sync::OnceLock<CalibrationTable> = std::sync::OnceLock::new();
        SHARED.get_or_init(CalibrationTable::calibrate)
    }

    fn time_tile(engine: &dyn DecompressEngine, tile: &CompressedTile) -> f64 {
        let mut out = DenseTile::zero();
        let mut scratch = DecompressScratch::new();
        let mut run = || {
            engine
                .decompress_tile_into(tile, &mut scratch, &mut out)
                .expect("calibration decompression");
        };
        run(); // warm scratch buffers and lazy LUTs outside the timed loop
        let start = std::time::Instant::now();
        for _ in 0..64 {
            run();
        }
        start.elapsed().as_secs_f64()
    }

    fn time_matrix(engine: &dyn DecompressEngine, matrix: &CompressedMatrix) -> f64 {
        let mut out = WeightMatrix::zeros(matrix.rows(), matrix.cols());
        let mut run = || {
            engine
                .decompress_matrix_into(matrix, &mut out)
                .expect("calibration decompression");
        };
        run();
        let start = std::time::Instant::now();
        for _ in 0..4 {
            run();
        }
        start.elapsed().as_secs_f64()
    }
}

/// Calibration-driven dispatcher over the fixed backends: every tile is
/// routed to the backend that won the micro-benchmark for its `(lut,
/// sparse, scaled)` class, and whole matrices either stream in-thread
/// through those per-tile winners or fan out over the tuned worker count.
///
/// Construction via [`AutoTunedEngine::new`] uses the process-wide
/// [`CalibrationTable::shared`] measurement; [`AutoTunedEngine::with_table`]
/// injects an explicit table for deterministic tests. Dispatch never
/// affects results — all backends are bit-exact — so the tuner is purely a
/// throughput decision.
#[derive(Debug, Clone)]
pub struct AutoTunedEngine {
    table: CalibrationTable,
    scalar: ScalarEngine,
    word: WordParallelEngine,
    simd: SimdEngine,
}

impl AutoTunedEngine {
    /// Creates the engine from the process-wide calibration.
    #[must_use]
    pub fn new() -> Self {
        AutoTunedEngine::with_table(CalibrationTable::shared().clone())
    }

    /// Creates the engine with an explicit calibration table.
    #[must_use]
    pub fn with_table(table: CalibrationTable) -> Self {
        AutoTunedEngine {
            table,
            scalar: ScalarEngine::new(),
            word: WordParallelEngine::new(),
            simd: SimdEngine::new(),
        }
    }

    /// The decision table driving dispatch.
    #[must_use]
    pub fn table(&self) -> &CalibrationTable {
        &self.table
    }

    fn tile_engine(&self, tile: &CompressedTile) -> &dyn DecompressEngine {
        let scheme = tile.scheme();
        let choice = self.table.tile_choice(
            scheme.format() != QuantFormat::Bf16,
            scheme.is_sparse(),
            scheme.group_size().is_some(),
        );
        match choice {
            EngineKind::Scalar => &self.scalar,
            EngineKind::Simd => &self.simd,
            // WordParallel, and ParallelMatrix's tile path, both route to
            // the word-parallel tile kernel. AutoTuned is unconstructible
            // in a table (`CalibrationTable::fixed` rejects it).
            _ => &self.word,
        }
    }
}

impl Default for AutoTunedEngine {
    fn default() -> Self {
        AutoTunedEngine::new()
    }
}

impl DecompressEngine for AutoTunedEngine {
    fn name(&self) -> &'static str {
        "auto-tuned"
    }

    fn decompress_tile_into(
        &self,
        tile: &CompressedTile,
        scratch: &mut DecompressScratch,
        out: &mut DenseTile,
    ) -> Result<(), CompressError> {
        self.tile_engine(tile)
            .decompress_tile_into(tile, scratch, out)
    }

    fn decompress_matrix_into(
        &self,
        matrix: &CompressedMatrix,
        out: &mut WeightMatrix,
    ) -> Result<(), CompressError> {
        if self.table.matrix_threads() > 1 {
            return ParallelMatrixEngine::new()
                .with_threads(self.table.matrix_threads())
                .decompress_matrix_into(matrix, out);
        }
        check_output_shape(matrix, out)?;
        let mut tile = DenseTile::zero();
        let mut scratch = DecompressScratch::new();
        for tr in 0..matrix.tile_rows() {
            for tc in 0..matrix.tile_cols() {
                self.decompress_tile_into(matrix.tile(tr, tc), &mut scratch, &mut tile)?;
                store_tile(out, tr, tc, &tile);
            }
        }
        Ok(())
    }
}

/// The enumerable backend axis: names every provided engine so that higher
/// layers can select one and report which one ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum EngineKind {
    /// [`ScalarEngine`] — the per-element functional reference.
    Scalar,
    /// [`WordParallelEngine`] — u64 bitmask words + popcount prefix sums.
    WordParallel,
    /// [`SimdEngine`] — AVX2 vector kernels with a portable fallback.
    Simd,
    /// [`ParallelMatrixEngine`] — scoped-thread fan-out over tile rows.
    ParallelMatrix,
    /// [`AutoTunedEngine`] — calibration-driven dispatch over the others.
    AutoTuned,
}

impl EngineKind {
    /// Every provided backend, in reference-first order.
    #[must_use]
    pub fn all() -> [EngineKind; 5] {
        [
            EngineKind::Scalar,
            EngineKind::WordParallel,
            EngineKind::Simd,
            EngineKind::ParallelMatrix,
            EngineKind::AutoTuned,
        ]
    }

    /// The backend's stable name (matches [`DecompressEngine::name`]).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Scalar => "scalar",
            EngineKind::WordParallel => "word-parallel",
            EngineKind::Simd => "simd",
            EngineKind::ParallelMatrix => "parallel-matrix",
            EngineKind::AutoTuned => "auto-tuned",
        }
    }

    /// Instantiates the backend.
    #[must_use]
    pub fn build(self) -> Box<dyn DecompressEngine> {
        match self {
            EngineKind::Scalar => Box::new(ScalarEngine::new()),
            EngineKind::WordParallel => Box::new(WordParallelEngine::new()),
            EngineKind::Simd => Box::new(SimdEngine::new()),
            EngineKind::ParallelMatrix => Box::new(ParallelMatrixEngine::new()),
            EngineKind::AutoTuned => Box::new(AutoTunedEngine::new()),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generator::WeightGenerator, CompressionScheme, Compressor, Decompressor};

    fn sample_tile(scheme: CompressionScheme, seed: u64) -> CompressedTile {
        let tile = WeightGenerator::new(seed).dense_matrix(16, 32).tile(0, 0);
        Compressor::new(scheme)
            .compress_tile(&tile)
            .expect("compress")
    }

    fn schemes() -> Vec<CompressionScheme> {
        vec![
            CompressionScheme::bf16_dense(),
            CompressionScheme::bf16_sparse(0.3),
            CompressionScheme::bf8_dense(),
            CompressionScheme::bf8_sparse(0.5),
            CompressionScheme::bf8_sparse(0.05),
            CompressionScheme::mxfp4(),
            CompressionScheme::mxfp4_sparse(0.4),
        ]
    }

    #[test]
    fn all_engines_match_the_reference_tile_output() {
        let reference = Decompressor::new();
        for scheme in schemes() {
            let tile = sample_tile(scheme, 31);
            let expected = reference.decompress_tile(&tile).expect("reference");
            for kind in EngineKind::all() {
                let engine = kind.build();
                let mut out = DenseTile::zero();
                let mut scratch = DecompressScratch::new();
                engine
                    .decompress_tile_into(&tile, &mut scratch, &mut out)
                    .expect("engine");
                for (a, b) in expected.elements().iter().zip(out.elements()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{kind} on {scheme}");
                }
            }
        }
    }

    #[test]
    fn output_tile_is_fully_overwritten() {
        // A reused output buffer must not leak values from a previous tile.
        let engine = WordParallelEngine::new();
        let mut scratch = DecompressScratch::new();
        let mut out = DenseTile::zero();
        let dense = sample_tile(CompressionScheme::bf8_dense(), 5);
        engine
            .decompress_tile_into(&dense, &mut scratch, &mut out)
            .expect("dense");
        let sparse = sample_tile(CompressionScheme::bf8_sparse(0.05), 6);
        engine
            .decompress_tile_into(&sparse, &mut scratch, &mut out)
            .expect("sparse");
        let reference = Decompressor::new().decompress_tile(&sparse).expect("ref");
        assert_eq!(out, reference);
    }

    #[test]
    fn matrix_decompression_matches_reference_for_ragged_shapes() {
        let g = WeightGenerator::new(9);
        let m = g.dense_matrix(50, 70); // not tile-aligned on purpose
        let cm = Compressor::new(CompressionScheme::bf8_sparse(0.3))
            .compress_matrix(&m)
            .expect("compress");
        let expected = Decompressor::new().decompress_matrix(&cm).expect("ref");
        for kind in EngineKind::all() {
            let got = kind.build().decompress_matrix(&cm).expect("engine");
            assert_eq!(got, expected, "{kind}");
        }
    }

    #[test]
    fn parallel_engine_thread_cap_is_respected_and_correct() {
        let g = WeightGenerator::new(10);
        let m = g.dense_matrix(128, 96);
        let cm = Compressor::new(CompressionScheme::mxfp4())
            .compress_matrix(&m)
            .expect("compress");
        let expected = Decompressor::new().decompress_matrix(&cm).expect("ref");
        for threads in [1, 2, 7] {
            let engine = ParallelMatrixEngine::new().with_threads(threads);
            assert_eq!(
                engine.decompress_matrix(&cm).expect("engine"),
                expected,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let g = WeightGenerator::new(11);
        let cm = Compressor::new(CompressionScheme::bf8_dense())
            .compress_matrix(&g.dense_matrix(32, 32))
            .expect("compress");
        let mut wrong = WeightMatrix::zeros(16, 32);
        for kind in EngineKind::all() {
            assert!(matches!(
                kind.build().decompress_matrix_into(&cm, &mut wrong),
                Err(CompressError::InvalidShape { .. })
            ));
        }
    }

    #[test]
    fn format_luts_cover_every_sub_byte_format() {
        let luts = FormatLuts::precomputed();
        for format in [
            QuantFormat::Bf8,
            QuantFormat::E4m3,
            QuantFormat::Fp4,
            QuantFormat::Int8,
            QuantFormat::Int4,
            QuantFormat::Custom {
                exp_bits: 3,
                man_bits: 2,
            },
        ] {
            let table = luts.table(format).expect("table");
            assert_eq!(table.format(), format);
            let direct = DequantTable::for_format(format);
            assert_eq!(table.entries(), direct.entries());
        }
        assert!(luts.table(QuantFormat::Bf16).is_none());
        assert_eq!(
            luts.dequantize(QuantFormat::Bf16, Bf16::ONE.to_bits())
                .to_f32(),
            1.0
        );
    }

    #[test]
    fn engine_kind_labels_round_trip() {
        for kind in EngineKind::all() {
            assert_eq!(kind.build().name(), kind.label());
            assert_eq!(kind.to_string(), kind.label());
        }
    }

    #[test]
    fn simd_portable_fallback_matches_reference() {
        // The forced fallback must stay bit-exact even on hosts where the
        // AVX2 path would normally run — this is the regression test for
        // the feature-detection contract.
        let engine = SimdEngine::portable();
        assert!(!engine.uses_avx2());
        let reference = Decompressor::new();
        for scheme in schemes() {
            let tile = sample_tile(scheme, 47);
            let expected = reference.decompress_tile(&tile).expect("reference");
            let mut out = DenseTile::zero();
            let mut scratch = DecompressScratch::new();
            engine
                .decompress_tile_into(&tile, &mut scratch, &mut out)
                .expect("portable");
            for (a, b) in expected.elements().iter().zip(out.elements()) {
                assert_eq!(a.to_bits(), b.to_bits(), "portable on {scheme}");
            }
        }
    }

    #[test]
    fn simd_routes_forged_infinite_scales_to_the_fallback() {
        use deca_numerics::mx::ScaleE8M0;
        // E8M0 code 255 promotes to +inf; the vector scale pass multiplies
        // zeros too, so such tiles must take the scalar-equivalent path.
        let tile = sample_tile(CompressionScheme::mxfp4_sparse(0.4), 13);
        let forged = CompressedTile::new(
            *tile.scheme(),
            tile.nonzero_bytes().to_vec(),
            tile.nonzero_count(),
            tile.bitmask().cloned(),
            vec![ScaleE8M0::from_code(255); tile.scales().len()],
        )
        .expect("forged tile still validates");
        let expected = Decompressor::new()
            .decompress_tile(&forged)
            .expect("reference");
        for engine in [SimdEngine::new(), SimdEngine::portable()] {
            let mut out = DenseTile::zero();
            let mut scratch = DecompressScratch::new();
            engine
                .decompress_tile_into(&forged, &mut scratch, &mut out)
                .expect("simd");
            for (pos, (a, b)) in expected.elements().iter().zip(out.elements()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "position {pos}");
            }
        }
    }

    #[test]
    fn auto_tuned_table_override_is_deterministic_and_bit_exact() {
        let table = CalibrationTable::fixed(EngineKind::Simd, 1);
        let engine = AutoTunedEngine::with_table(table.clone());
        assert_eq!(engine.table(), &table);
        for lut in [false, true] {
            for sparse in [false, true] {
                for scaled in [false, true] {
                    assert_eq!(table.tile_choice(lut, sparse, scaled), EngineKind::Simd);
                }
            }
        }
        assert_eq!(table.matrix_threads(), 1);
        let m = WeightGenerator::new(21).dense_matrix(48, 64);
        let cm = Compressor::new(CompressionScheme::mxfp4_sparse(0.3))
            .compress_matrix(&m)
            .expect("compress");
        let expected = Decompressor::new().decompress_matrix(&cm).expect("ref");
        assert_eq!(engine.decompress_matrix(&cm).expect("engine"), expected);
    }

    #[test]
    #[should_panic(expected = "fixed backends")]
    fn calibration_table_rejects_the_dispatcher_itself() {
        let _ = CalibrationTable::fixed(EngineKind::AutoTuned, 1);
    }

    #[test]
    fn shared_calibration_chooses_only_fixed_tile_backends() {
        let table = CalibrationTable::shared();
        for lut in [false, true] {
            for sparse in [false, true] {
                for scaled in [false, true] {
                    let choice = table.tile_choice(lut, sparse, scaled);
                    assert!(
                        matches!(
                            choice,
                            EngineKind::Scalar | EngineKind::WordParallel | EngineKind::Simd
                        ),
                        "unexpected calibration winner {choice}"
                    );
                }
            }
        }
        assert!(table.matrix_threads() >= 1);
    }
}
