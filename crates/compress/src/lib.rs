//! Weight compression substrate for the DECA reproduction.
//!
//! The paper assumes weight matrices that were compressed *offline* with a
//! combination of low-bit quantization and unstructured sparsification
//! (Fig. 1). At inference time, tiles of those matrices must be decompressed
//! *online* into dense BF16 tiles before the in-core TMUL engine can consume
//! them. This crate implements the offline side plus a reference (scalar)
//! online decompressor:
//!
//! * [`CompressionScheme`] — a quantization format + density (+ optional
//!   group quantization), with exact byte/compression-factor accounting,
//! * [`Bitmask`] — the bitmask sparse format (one bit per element of the
//!   original tile, nonzeros stored contiguously),
//! * [`DenseTile`] / [`CompressedTile`] — the 16×32-element AMX weight tile
//!   in dense BF16 and compressed forms,
//! * [`WeightMatrix`] / [`CompressedMatrix`] — whole matrices tiled for AMX,
//! * [`Compressor`] / [`Decompressor`] — offline compression and reference
//!   online decompression,
//! * [`engine`] — the pluggable streaming decompression backends
//!   ([`DecompressEngine`]): scalar reference, word-parallel
//!   (POPCNT/prefix-sum style), explicitly vectorized SIMD (AVX2 with a
//!   portable chunked fallback), threaded whole-matrix fan-out and a
//!   calibration-driven auto-tuned dispatcher, all bit-exact against each
//!   other,
//! * [`generator`] — synthetic weight matrices with controlled density.
//!
//! # Example
//!
//! ```
//! use deca_compress::{CompressionScheme, Compressor, Decompressor, generator};
//!
//! let scheme = CompressionScheme::bf8_sparse(0.5);
//! let weights = generator::WeightGenerator::new(7).dense_matrix(32, 64);
//! let compressed = Compressor::new(scheme).compress_matrix(&weights)?;
//! let restored = Decompressor::new().decompress_matrix(&compressed)?;
//! assert_eq!(restored.rows(), 32);
//! # Ok::<(), deca_compress::CompressError>(())
//! ```

// Unsafe code is denied crate-wide (reinforcing the workspace lint); the one
// sanctioned exception is the `engine::simd_x86` intrinsics module, which
// opts back in locally with `#[allow(unsafe_code)]` and documents the safety
// argument for every unsafe block.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod bitmask;
mod compressor;
mod decompressor;
pub mod engine;
mod error;
pub mod generator;
mod matrix;
mod scheme;
mod tile;

pub use bitmask::Bitmask;
pub use compressor::{compress, Compressor};
pub use decompressor::Decompressor;
pub use engine::{
    AutoTunedEngine, CalibrationTable, DecompressEngine, DecompressScratch, EngineKind, FormatLuts,
    ParallelMatrixEngine, ScalarEngine, SimdEngine, WordParallelEngine,
};
pub use error::CompressError;
pub use matrix::{CompressedMatrix, WeightMatrix};
pub use scheme::{CompressionScheme, SchemeSet};
pub use tile::{pack_codes, unpack_codes, unpack_codes_into, CompressedTile, DenseTile, TileShape};

/// Rows in an AMX weight tile (§2.3).
pub const TILE_ROWS: usize = 16;
/// BF16 columns in an AMX weight tile (§2.3).
pub const TILE_COLS: usize = 32;
/// Elements per weight tile.
pub const TILE_ELEMS: usize = TILE_ROWS * TILE_COLS;
/// Bytes of a dense BF16 weight tile (1 KB).
pub const TILE_BYTES_BF16: usize = TILE_ELEMS * 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_geometry_matches_amx() {
        assert_eq!(TILE_ROWS, 16);
        assert_eq!(TILE_COLS, 32);
        assert_eq!(TILE_ELEMS, 512);
        assert_eq!(TILE_BYTES_BF16, 1024);
    }
}
