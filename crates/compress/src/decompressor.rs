//! Reference (scalar) online decompression (Fig. 1, right).
//!
//! This is the functional ground truth that both the libxsmm-style software
//! kernel model and the DECA pipeline model are verified against: unpack the
//! nonzero codes, dequantize them (LUT for ≤8-bit formats, passthrough for
//! BF16), expand them to their dense positions using the bitmask, and apply
//! the per-group scale factors.

use crate::engine::{DecompressEngine, DecompressScratch, ScalarEngine};
use crate::{CompressError, CompressedMatrix, CompressedTile, DenseTile, WeightMatrix};

/// Reference decompressor: the allocating convenience facade over
/// [`ScalarEngine`].
///
/// The per-format dequantization tables are precomputed at construction
/// (no interior mutability), so a `Decompressor` is `Sync` and can be
/// shared across threads.
#[derive(Debug, Default)]
pub struct Decompressor {
    engine: ScalarEngine,
}

impl Decompressor {
    /// Creates a decompressor (precomputes the per-format LUTs).
    #[must_use]
    pub fn new() -> Self {
        Decompressor::default()
    }

    /// The scalar streaming engine backing this decompressor.
    #[must_use]
    pub fn engine(&self) -> &ScalarEngine {
        &self.engine
    }

    /// Decompresses a single tile back to its dense BF16 form.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::CorruptTile`] if the tile's bitmask and
    /// nonzero payload disagree.
    pub fn decompress_tile(&self, tile: &CompressedTile) -> Result<DenseTile, CompressError> {
        let mut out = DenseTile::zero();
        let mut scratch = DecompressScratch::new();
        self.engine
            .decompress_tile_into(tile, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Decompresses a whole matrix, returning the dense f32 weights
    /// (quantization error included — this is what the inference engine
    /// actually computes with).
    ///
    /// # Errors
    ///
    /// Propagates tile-level errors.
    pub fn decompress_matrix(
        &self,
        matrix: &CompressedMatrix,
    ) -> Result<WeightMatrix, CompressError> {
        self.engine.decompress_matrix(matrix)
    }
}

/// The decompressor is shareable across threads: its only state is the
/// precomputed LUT array.
const _: fn() = || {
    fn assert_sync<T: Sync + Send>() {}
    assert_sync::<Decompressor>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generator::WeightGenerator, CompressionScheme, Compressor, TILE_COLS, TILE_ROWS};

    fn roundtrip_max_rel_error(scheme: CompressionScheme, seed: u64) -> f64 {
        let g = WeightGenerator::new(seed);
        let m = g.dense_matrix(16, 32);
        let tile = m.tile(0, 0);
        let compressed = Compressor::new(scheme)
            .compress_tile(&tile)
            .expect("compress");
        let restored = Decompressor::new()
            .decompress_tile(&compressed)
            .expect("decompress");
        let mut max_rel: f64 = 0.0;
        // For quantized (sub-16-bit) formats, values below half of the
        // smallest subnormal legitimately flush to zero — there the error
        // bound is absolute, not relative, so the relative-error sweep only
        // covers weights above that threshold (the same convention as the
        // property suite). BF16 has no such flush: every nonzero weight
        // must round-trip, so its threshold is zero.
        let flush_threshold = if scheme.is_quantized() {
            f64::from(deca_numerics::Minifloat::bf8().min_subnormal()) / 2.0 * 1.01
        } else {
            0.0
        };
        for r in 0..TILE_ROWS {
            for c in 0..TILE_COLS {
                let orig = f64::from(tile.get(r, c).to_f32());
                let back = f64::from(restored.get(r, c).to_f32());
                if orig.abs() > flush_threshold {
                    max_rel = max_rel.max(((back - orig) / orig).abs());
                }
            }
        }
        max_rel
    }

    #[test]
    fn bf16_dense_roundtrip_is_exact() {
        assert_eq!(
            roundtrip_max_rel_error(CompressionScheme::bf16_dense(), 21),
            0.0
        );
    }

    #[test]
    fn bf8_dense_roundtrip_error_is_bounded() {
        // E5M2 worst case relative error is 12.5 % + BF16 rounding noise.
        let err = roundtrip_max_rel_error(CompressionScheme::bf8_dense(), 22);
        assert!(err <= 0.13, "max relative error {err}");
    }

    #[test]
    fn mxfp4_roundtrip_error_is_bounded() {
        // MX quantization error is bounded relative to the *group* maximum:
        // the shared scale is sized for the largest element, so small values
        // can lose most of their relative precision (they may even flush to
        // zero), but the absolute error stays below ~a quarter of the group
        // max (half of FP4's coarsest step, 0.5·scale·2^-1, with margin).
        let g = WeightGenerator::new(23);
        let m = g.dense_matrix(16, 32);
        let tile = m.tile(0, 0);
        let compressed = Compressor::new(CompressionScheme::mxfp4())
            .compress_tile(&tile)
            .expect("compress");
        let restored = Decompressor::new()
            .decompress_tile(&compressed)
            .expect("decompress");
        for row_group in 0..TILE_ROWS {
            let group_max = tile
                .row(row_group)
                .iter()
                .fold(0f32, |acc, v| acc.max(v.to_f32().abs()));
            for c in 0..TILE_COLS {
                let orig = tile.get(row_group, c).to_f32();
                let back = restored.get(row_group, c).to_f32();
                assert!(
                    (back - orig).abs() <= 0.26 * group_max + 1e-9,
                    "group {row_group} col {c}: {orig} -> {back} (group max {group_max})"
                );
            }
        }
    }

    #[test]
    fn sparse_roundtrip_restores_positions_exactly() {
        let g = WeightGenerator::new(24);
        let m = g.sparse_matrix(16, 32, 0.2);
        let tile = m.tile(0, 0);
        let scheme = CompressionScheme::bf16_sparse(0.2);
        let compressed = Compressor::new(scheme)
            .without_pruning()
            .compress_tile(&tile)
            .expect("compress");
        let restored = Decompressor::new()
            .decompress_tile(&compressed)
            .expect("decompress");
        for r in 0..TILE_ROWS {
            for c in 0..TILE_COLS {
                assert_eq!(
                    restored.get(r, c).is_zero(),
                    tile.get(r, c).is_zero(),
                    "zero pattern must be preserved at ({r},{c})"
                );
                // BF16 sparse is lossless.
                assert_eq!(restored.get(r, c).to_bits(), tile.get(r, c).to_bits());
            }
        }
    }

    #[test]
    fn matrix_roundtrip_preserves_shape_and_sparsity() {
        let g = WeightGenerator::new(25);
        let m = g.dense_matrix(48, 64);
        let scheme = CompressionScheme::bf8_sparse(0.3);
        let cm = Compressor::new(scheme)
            .compress_matrix(&m)
            .expect("compress");
        let restored = Decompressor::new()
            .decompress_matrix(&cm)
            .expect("decompress");
        assert_eq!(restored.rows(), 48);
        assert_eq!(restored.cols(), 64);
        assert!((restored.density() - 0.3).abs() < 0.02);
    }

    #[test]
    fn quantization_is_idempotent_through_the_pipeline() {
        // Compressing the decompressed output again must be lossless: the
        // values are already on the quantization grid.
        let g = WeightGenerator::new(26);
        let m = g.dense_matrix(16, 32);
        let scheme = CompressionScheme::bf8_dense();
        let c = Compressor::new(scheme);
        let d = Decompressor::new();
        let once = d
            .decompress_matrix(&c.compress_matrix(&m).expect("compress"))
            .expect("decompress");
        let twice = d
            .decompress_matrix(&c.compress_matrix(&once).expect("compress"))
            .expect("decompress");
        assert_eq!(once, twice);
    }
}
