//! Dense and compressed AMX weight tiles.
//!
//! A weight tile is the unit the TMUL consumes: 16 rows × 32 BF16 columns
//! (1 KB). A compressed tile stores the same logical data as three memory
//! structures — the packed nonzero array, the bitmask (when sparse) and the
//! per-group scale factors (when group-quantized) — matching the tile layout
//! DECA's Loaders fetch (§5.2).

use deca_numerics::{mx::ScaleE8M0, Bf16};

use crate::{Bitmask, CompressError, CompressionScheme, TILE_COLS, TILE_ELEMS, TILE_ROWS};

/// The logical shape of an AMX weight tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TileShape {
    /// Number of rows (up to 16).
    pub rows: usize,
    /// Number of BF16 columns per row (up to 32).
    pub cols: usize,
}

impl TileShape {
    /// The full AMX weight-tile shape (16×32).
    pub const FULL: TileShape = TileShape {
        rows: TILE_ROWS,
        cols: TILE_COLS,
    };

    /// Elements in this shape.
    #[must_use]
    pub fn elems(&self) -> usize {
        self.rows * self.cols
    }
}

/// A dense 16×32 BF16 weight tile, laid out row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTile {
    data: Vec<Bf16>,
}

impl DenseTile {
    /// Creates an all-zero tile.
    #[must_use]
    pub fn zero() -> Self {
        DenseTile {
            data: vec![Bf16::ZERO; TILE_ELEMS],
        }
    }

    /// Builds a tile from exactly 512 BF16 values in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not contain exactly 512 elements.
    #[must_use]
    pub fn from_values(values: Vec<Bf16>) -> Self {
        assert_eq!(
            values.len(),
            TILE_ELEMS,
            "a dense tile holds exactly {TILE_ELEMS} elements"
        );
        DenseTile { data: values }
    }

    /// Builds a tile from f32 values (converted to BF16).
    ///
    /// # Panics
    ///
    /// Panics if `values` does not contain exactly 512 elements.
    #[must_use]
    pub fn from_f32(values: &[f32]) -> Self {
        assert_eq!(values.len(), TILE_ELEMS);
        DenseTile {
            data: values.iter().map(|v| Bf16::from_f32(*v)).collect(),
        }
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Bf16 {
        assert!(row < TILE_ROWS && col < TILE_COLS, "index out of range");
        self.data[row * TILE_COLS + col]
    }

    /// Sets element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, row: usize, col: usize, value: Bf16) {
        assert!(row < TILE_ROWS && col < TILE_COLS, "index out of range");
        self.data[row * TILE_COLS + col] = value;
    }

    /// All 512 elements in row-major order.
    #[must_use]
    pub fn elements(&self) -> &[Bf16] {
        &self.data
    }

    /// Mutable view of all 512 elements in row-major order (position
    /// `row * 32 + col`). This is the zero-copy write path the streaming
    /// decompression engines scatter into.
    pub fn elements_mut(&mut self) -> &mut [Bf16] {
        &mut self.data
    }

    /// Resets every element to zero without reallocating, so one tile
    /// buffer can be reused across streaming decompressions.
    pub fn fill_zero(&mut self) {
        self.data.fill(Bf16::ZERO);
    }

    /// One 32-element row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= 16`.
    #[must_use]
    pub fn row(&self, row: usize) -> &[Bf16] {
        assert!(row < TILE_ROWS);
        &self.data[row * TILE_COLS..(row + 1) * TILE_COLS]
    }

    /// Number of nonzero elements.
    #[must_use]
    pub fn nonzero_count(&self) -> usize {
        self.data.iter().filter(|v| !v.is_zero()).count()
    }

    /// Fraction of nonzero elements.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.nonzero_count() as f64 / TILE_ELEMS as f64
    }

    /// The dense memory footprint of the tile (always 1 KB).
    #[must_use]
    pub fn byte_size(&self) -> usize {
        crate::TILE_BYTES_BF16
    }
}

impl Default for DenseTile {
    fn default() -> Self {
        DenseTile::zero()
    }
}

/// Packs a slice of ≤16-bit codes into bytes at the given bit width,
/// LSB-first within each byte.
#[must_use]
pub fn pack_codes(codes: &[u16], bits: u32) -> Vec<u8> {
    assert!((1..=16).contains(&bits), "bit width must be 1..=16");
    let total_bits = codes.len() * bits as usize;
    let mut bytes = vec![0u8; total_bits.div_ceil(8)];
    let mut bit_pos = 0usize;
    for &code in codes {
        let code = u32::from(code) & ((1u32 << bits) - 1);
        for b in 0..bits as usize {
            if (code >> b) & 1 == 1 {
                bytes[(bit_pos + b) / 8] |= 1 << ((bit_pos + b) % 8);
            }
        }
        bit_pos += bits as usize;
    }
    bytes
}

/// Unpacks `count` codes of `bits` bits each from a byte buffer packed with
/// [`pack_codes`].
///
/// # Panics
///
/// Panics if the buffer is too short.
#[must_use]
pub fn unpack_codes(bytes: &[u8], bits: u32, count: usize) -> Vec<u16> {
    let mut out = Vec::new();
    unpack_codes_into(bytes, bits, count, &mut out);
    out
}

/// Unpacks `count` codes of `bits` bits each into a caller-provided buffer,
/// clearing it first — the non-allocating variant of [`unpack_codes`] that
/// the streaming decompression engines reuse across tiles. Byte-aligned
/// widths (16, 8 and 4 bits — every format the paper evaluates) take a
/// direct byte path; other widths fall back to the bit-serial loop.
///
/// # Panics
///
/// Panics if the buffer is too short.
pub fn unpack_codes_into(bytes: &[u8], bits: u32, count: usize, out: &mut Vec<u16>) {
    assert!((1..=16).contains(&bits), "bit width must be 1..=16");
    assert!(
        bytes.len() * 8 >= count * bits as usize,
        "byte buffer too short: {} bytes for {count} codes of {bits} bits",
        bytes.len()
    );
    out.clear();
    out.reserve(count);
    match bits {
        16 => out.extend(
            bytes
                .chunks_exact(2)
                .take(count)
                .map(|pair| u16::from_le_bytes([pair[0], pair[1]])),
        ),
        8 => out.extend(bytes.iter().take(count).map(|&b| u16::from(b))),
        4 => out.extend((0..count).map(|i| {
            let byte = bytes[i / 2];
            u16::from(if i % 2 == 0 { byte & 0x0F } else { byte >> 4 })
        })),
        _ => {
            let mut bit_pos = 0usize;
            for _ in 0..count {
                let mut code = 0u16;
                for b in 0..bits as usize {
                    if (bytes[(bit_pos + b) / 8] >> ((bit_pos + b) % 8)) & 1 == 1 {
                        code |= 1 << b;
                    }
                }
                out.push(code);
                bit_pos += bits as usize;
            }
        }
    }
}

/// A compressed weight tile: the three memory structures a DECA Loader
/// fetches (§5.2) plus the scheme needed to interpret them.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedTile {
    scheme: CompressionScheme,
    /// Packed nonzero codes (quantized format), row-major order of the
    /// original dense tile with zeros skipped.
    nonzero_bytes: Vec<u8>,
    /// Number of nonzero codes stored in `nonzero_bytes`.
    nonzero_count: usize,
    /// Bitmask over the 512 dense positions (present only for sparse tiles).
    bitmask: Option<Bitmask>,
    /// Per-group scale factors (present only for group-quantized formats).
    scales: Vec<ScaleE8M0>,
}

impl CompressedTile {
    /// Assembles a compressed tile from its parts, validating consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::CorruptTile`] if the bitmask popcount does
    /// not match `nonzero_count`, the byte payload is too small, a dense
    /// tile carries a bitmask, or the scale count does not match the
    /// scheme's group size.
    pub fn new(
        scheme: CompressionScheme,
        nonzero_bytes: Vec<u8>,
        nonzero_count: usize,
        bitmask: Option<Bitmask>,
        scales: Vec<ScaleE8M0>,
    ) -> Result<Self, CompressError> {
        let tile = CompressedTile {
            scheme,
            nonzero_bytes,
            nonzero_count,
            bitmask,
            scales,
        };
        tile.validate()?;
        Ok(tile)
    }

    /// Checks that the tile's three memory structures agree: the bitmask
    /// covers exactly one tile and its popcount matches the stored nonzero
    /// count, a dense tile stores every element, the payload holds all
    /// codes, and the scale vector matches the scheme's group geometry.
    ///
    /// [`CompressedTile::new`] enforces this at construction; decompression
    /// engines and the vOp pipeline re-check it on every tile so that a
    /// corrupted weight stream (reachable through [`new_unchecked`] or a
    /// hypothetical deserialization path) faults cleanly instead of
    /// indexing out of bounds or silently mis-decompressing.
    ///
    /// [`new_unchecked`]: CompressedTile::new_unchecked
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::CorruptTile`] describing the first
    /// inconsistency found.
    pub fn validate(&self) -> Result<(), CompressError> {
        let corrupt = |reason: String| Err(CompressError::CorruptTile { reason });
        match (&self.bitmask, self.scheme.is_sparse()) {
            (Some(mask), true) => {
                if mask.len() != TILE_ELEMS {
                    return corrupt(format!(
                        "bitmask covers {} bits, expected {TILE_ELEMS}",
                        mask.len()
                    ));
                }
                if mask.popcount() != self.nonzero_count {
                    return corrupt(format!(
                        "bitmask popcount {} does not match nonzero count {}",
                        mask.popcount(),
                        self.nonzero_count
                    ));
                }
            }
            (None, true) => return corrupt("sparse scheme requires a bitmask".to_string()),
            (Some(_), false) => {
                return corrupt("dense scheme must not carry a bitmask".to_string())
            }
            (None, false) => {
                if self.nonzero_count != TILE_ELEMS {
                    return corrupt(format!(
                        "dense tile must store all {TILE_ELEMS} elements, got {}",
                        self.nonzero_count
                    ));
                }
            }
        }
        let needed_bits = self.nonzero_count * self.scheme.element_bits() as usize;
        if self.nonzero_bytes.len() * 8 < needed_bits {
            return corrupt(format!(
                "nonzero payload of {} bytes cannot hold {} codes of {} bits",
                self.nonzero_bytes.len(),
                self.nonzero_count,
                self.scheme.element_bits()
            ));
        }
        let expected_scales = match self.scheme.group_size() {
            Some(g) => TILE_ELEMS.div_ceil(g),
            None => 0,
        };
        if self.scales.len() != expected_scales {
            return corrupt(format!(
                "expected {expected_scales} group scales, got {}",
                self.scales.len()
            ));
        }
        Ok(())
    }

    /// The compression scheme this tile was produced with.
    #[must_use]
    pub fn scheme(&self) -> &CompressionScheme {
        &self.scheme
    }

    /// The packed nonzero payload.
    #[must_use]
    pub fn nonzero_bytes(&self) -> &[u8] {
        &self.nonzero_bytes
    }

    /// Number of nonzero codes stored.
    #[must_use]
    pub fn nonzero_count(&self) -> usize {
        self.nonzero_count
    }

    /// The bitmask, if the tile is sparse.
    #[must_use]
    pub fn bitmask(&self) -> Option<&Bitmask> {
        self.bitmask.as_ref()
    }

    /// Per-group scale factors (empty unless group-quantized).
    #[must_use]
    pub fn scales(&self) -> &[ScaleE8M0] {
        &self.scales
    }

    /// Unpacks the nonzero codes into 16-bit values (BF16 bits for Q16
    /// schemes, narrow codes otherwise).
    #[must_use]
    pub fn unpack_nonzeros(&self) -> Vec<u16> {
        unpack_codes(
            &self.nonzero_bytes,
            self.scheme.element_bits(),
            self.nonzero_count,
        )
    }

    /// Unpacks the nonzero codes into a caller-provided buffer (cleared
    /// first) — the non-allocating variant of [`unpack_nonzeros`] used by
    /// the streaming decompression engines and the vOp pipeline hot loop.
    ///
    /// [`unpack_nonzeros`]: CompressedTile::unpack_nonzeros
    pub fn unpack_nonzeros_into(&self, out: &mut Vec<u16>) {
        unpack_codes_into(
            &self.nonzero_bytes,
            self.scheme.element_bits(),
            self.nonzero_count,
            out,
        );
    }

    /// Assembles a compressed tile from its parts **without** consistency
    /// validation.
    ///
    /// This exists for fault injection: decompression engines must detect
    /// tiles whose memory structures disagree (a corrupted weight stream),
    /// and the validating [`CompressedTile::new`] makes such tiles otherwise
    /// unconstructible. Not intended for production use.
    #[doc(hidden)]
    #[must_use]
    pub fn new_unchecked(
        scheme: CompressionScheme,
        nonzero_bytes: Vec<u8>,
        nonzero_count: usize,
        bitmask: Option<Bitmask>,
        scales: Vec<ScaleE8M0>,
    ) -> Self {
        CompressedTile {
            scheme,
            nonzero_bytes,
            nonzero_count,
            bitmask,
            scales,
        }
    }

    /// Bytes of the nonzero payload as stored in memory.
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        self.nonzero_bytes.len()
    }

    /// Total bytes the tile occupies in memory: payload + bitmask + scales.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.payload_bytes()
            + self.bitmask.as_ref().map_or(0, Bitmask::byte_size)
            + self.scales.len()
    }

    /// Actual density of this particular tile.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.nonzero_count as f64 / TILE_ELEMS as f64
    }

    /// The compression factor actually achieved by this tile.
    #[must_use]
    pub fn compression_factor(&self) -> f64 {
        crate::TILE_BYTES_BF16 as f64 / self.byte_size() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_tile_basics() {
        let mut t = DenseTile::zero();
        assert_eq!(t.nonzero_count(), 0);
        assert_eq!(t.byte_size(), 1024);
        t.set(3, 17, Bf16::from_f32(2.5));
        assert_eq!(t.get(3, 17).to_f32(), 2.5);
        assert_eq!(t.nonzero_count(), 1);
        assert_eq!(t.row(3)[17].to_f32(), 2.5);
        assert!((t.density() - 1.0 / 512.0).abs() < 1e-12);
    }

    #[test]
    fn dense_tile_from_f32_roundtrip() {
        let values: Vec<f32> = (0..TILE_ELEMS).map(|i| (i as f32) * 0.25).collect();
        let t = DenseTile::from_f32(&values);
        assert_eq!(t.get(0, 1).to_f32(), 0.25);
        assert_eq!(t.get(1, 0).to_f32(), 8.0);
        assert_eq!(t.elements().len(), 512);
    }

    #[test]
    #[should_panic(expected = "exactly")]
    fn dense_tile_wrong_length_panics() {
        let _ = DenseTile::from_values(vec![Bf16::ZERO; 100]);
    }

    #[test]
    fn tile_shape_full() {
        assert_eq!(TileShape::FULL.elems(), 512);
    }

    #[test]
    fn pack_unpack_roundtrip_various_widths() {
        for bits in [1u32, 3, 4, 6, 7, 8, 12, 16] {
            let max = if bits == 16 {
                u16::MAX
            } else {
                (1u16 << bits) - 1
            };
            let codes: Vec<u16> = (0..100u16).map(|i| (i * 37 + 5) & max).collect();
            let packed = pack_codes(&codes, bits);
            assert_eq!(packed.len(), (codes.len() * bits as usize).div_ceil(8));
            let unpacked = unpack_codes(&packed, bits, codes.len());
            assert_eq!(unpacked, codes, "bit width {bits}");
        }
    }

    #[test]
    fn pack_codes_4bit_layout() {
        // Two 4-bit codes per byte, low nibble first.
        let packed = pack_codes(&[0x3, 0xA, 0xF], 4);
        assert_eq!(packed, vec![0xA3, 0x0F]);
    }

    fn sample_sparse_tile() -> CompressedTile {
        let scheme = CompressionScheme::bf8_sparse(0.25);
        let mut mask = Bitmask::new(TILE_ELEMS);
        for i in (0..TILE_ELEMS).step_by(4) {
            mask.set(i, true);
        }
        let nnz = mask.popcount();
        let codes: Vec<u16> = (0..nnz as u16).map(|i| i % 256).collect();
        let bytes = pack_codes(&codes, 8);
        CompressedTile::new(scheme, bytes, nnz, Some(mask), vec![]).expect("valid tile")
    }

    #[test]
    fn compressed_tile_byte_size_accounts_for_all_structures() {
        let t = sample_sparse_tile();
        assert_eq!(t.nonzero_count(), 128);
        assert_eq!(t.payload_bytes(), 128);
        assert_eq!(t.byte_size(), 128 + 64);
        assert!((t.density() - 0.25).abs() < 1e-12);
        assert!((t.compression_factor() - 1024.0 / 192.0).abs() < 1e-12);
    }

    #[test]
    fn compressed_tile_unpacks_codes() {
        let t = sample_sparse_tile();
        let codes = t.unpack_nonzeros();
        assert_eq!(codes.len(), 128);
        assert_eq!(codes[5], 5);
    }

    #[test]
    fn corrupt_tiles_are_rejected() {
        let scheme = CompressionScheme::bf8_sparse(0.5);
        // Missing bitmask for a sparse scheme.
        assert!(matches!(
            CompressedTile::new(scheme, vec![0; 256], 256, None, vec![]),
            Err(CompressError::CorruptTile { .. })
        ));
        // Popcount mismatch.
        let mask = Bitmask::new(TILE_ELEMS);
        assert!(CompressedTile::new(scheme, vec![0; 256], 256, Some(mask), vec![]).is_err());
        // Payload too small.
        let mut mask = Bitmask::new(TILE_ELEMS);
        mask.set(0, true);
        mask.set(1, true);
        assert!(CompressedTile::new(scheme, vec![0; 1], 2, Some(mask), vec![]).is_err());
        // Dense scheme with a bitmask.
        let dense = CompressionScheme::bf8_dense();
        assert!(CompressedTile::new(
            dense,
            vec![0; 512],
            512,
            Some(Bitmask::new(TILE_ELEMS)),
            vec![]
        )
        .is_err());
        // Dense tile that does not store every element.
        assert!(CompressedTile::new(dense, vec![0; 511], 511, None, vec![]).is_err());
        // Wrong number of scales for MXFP4.
        let mx = CompressionScheme::mxfp4();
        assert!(CompressedTile::new(mx, vec![0; 256], 512, None, vec![ScaleE8M0::ONE; 3]).is_err());
    }

    #[test]
    fn mxfp4_tile_scale_accounting() {
        let scheme = CompressionScheme::mxfp4();
        let codes = vec![0u16; TILE_ELEMS];
        let bytes = pack_codes(&codes, 4);
        let scales = vec![ScaleE8M0::ONE; 16];
        let t = CompressedTile::new(scheme, bytes, TILE_ELEMS, None, scales).expect("valid");
        assert_eq!(t.byte_size(), 256 + 16);
        assert_eq!(t.scales().len(), 16);
    }
}
