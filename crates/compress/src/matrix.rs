//! Weight matrices and their tiled, compressed representations.
//!
//! The FC layers of an LLM store weight matrices that are tiled into 16×32
//! AMX weight tiles. A [`WeightMatrix`] is the dense f32 "master" copy used
//! for offline compression and for functional GeMM verification; a
//! [`CompressedMatrix`] holds one [`CompressedTile`] per tile position.

use deca_numerics::Bf16;

use crate::{CompressError, CompressedTile, CompressionScheme, DenseTile, TILE_COLS, TILE_ROWS};

/// A dense weight matrix in row-major f32.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl WeightMatrix {
    /// Creates an all-zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        WeightMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidShape`] if `data.len() != rows*cols`
    /// or a dimension is zero.
    pub fn from_data(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, CompressError> {
        if rows == 0 || cols == 0 {
            return Err(CompressError::InvalidShape {
                rows,
                cols,
                reason: "dimensions must be positive",
            });
        }
        if data.len() != rows * cols {
            return Err(CompressError::InvalidShape {
                rows,
                cols,
                reason: "data length does not match rows*cols",
            });
        }
        Ok(WeightMatrix { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[must_use]
    pub fn elems(&self) -> usize {
        self.rows * self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// Sets element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col] = value;
    }

    /// Row-major data slice.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Fraction of nonzero elements.
    #[must_use]
    pub fn density(&self) -> f64 {
        let nnz = self.data.iter().filter(|v| **v != 0.0).count();
        nnz as f64 / self.elems() as f64
    }

    /// Number of tile rows (16-row blocks), padding the last block.
    #[must_use]
    pub fn tile_rows(&self) -> usize {
        self.rows.div_ceil(TILE_ROWS)
    }

    /// Number of tile columns (32-column blocks), padding the last block.
    #[must_use]
    pub fn tile_cols(&self) -> usize {
        self.cols.div_ceil(TILE_COLS)
    }

    /// Total number of weight tiles covering the matrix.
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.tile_rows() * self.tile_cols()
    }

    /// Extracts the dense tile at tile coordinates `(tr, tc)`, zero-padding
    /// past the matrix edge.
    ///
    /// # Panics
    ///
    /// Panics if the tile coordinates are out of range.
    #[must_use]
    pub fn tile(&self, tr: usize, tc: usize) -> DenseTile {
        assert!(
            tr < self.tile_rows() && tc < self.tile_cols(),
            "tile coordinates out of range"
        );
        let mut tile = DenseTile::zero();
        for r in 0..TILE_ROWS {
            let row = tr * TILE_ROWS + r;
            if row >= self.rows {
                break;
            }
            for c in 0..TILE_COLS {
                let col = tc * TILE_COLS + c;
                if col >= self.cols {
                    break;
                }
                tile.set(r, c, Bf16::from_f32(self.get(row, col)));
            }
        }
        tile
    }

    /// Memory footprint of the uncompressed matrix in BF16 bytes.
    #[must_use]
    pub fn bf16_bytes(&self) -> usize {
        self.elems() * 2
    }
}

/// A weight matrix compressed tile-by-tile under a single scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedMatrix {
    scheme: CompressionScheme,
    rows: usize,
    cols: usize,
    tile_rows: usize,
    tile_cols: usize,
    tiles: Vec<CompressedTile>,
}

impl CompressedMatrix {
    /// Assembles a compressed matrix from its tiles in row-major tile order.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidShape`] if the number of tiles does
    /// not match the tiled dimensions.
    pub fn new(
        scheme: CompressionScheme,
        rows: usize,
        cols: usize,
        tiles: Vec<CompressedTile>,
    ) -> Result<Self, CompressError> {
        let tile_rows = rows.div_ceil(TILE_ROWS);
        let tile_cols = cols.div_ceil(TILE_COLS);
        if tiles.len() != tile_rows * tile_cols {
            return Err(CompressError::InvalidShape {
                rows,
                cols,
                reason: "tile count does not match tiled dimensions",
            });
        }
        Ok(CompressedMatrix {
            scheme,
            rows,
            cols,
            tile_rows,
            tile_cols,
            tiles,
        })
    }

    /// The compression scheme used.
    #[must_use]
    pub fn scheme(&self) -> &CompressionScheme {
        &self.scheme
    }

    /// Logical rows of the original matrix.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical columns of the original matrix.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of tile rows.
    #[must_use]
    pub fn tile_rows(&self) -> usize {
        self.tile_rows
    }

    /// Number of tile columns.
    #[must_use]
    pub fn tile_cols(&self) -> usize {
        self.tile_cols
    }

    /// All tiles in row-major tile order.
    #[must_use]
    pub fn tiles(&self) -> &[CompressedTile] {
        &self.tiles
    }

    /// The tile at tile coordinates `(tr, tc)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    #[must_use]
    pub fn tile(&self, tr: usize, tc: usize) -> &CompressedTile {
        assert!(
            tr < self.tile_rows && tc < self.tile_cols,
            "tile out of range"
        );
        &self.tiles[tr * self.tile_cols + tc]
    }

    /// Total compressed bytes across all tiles.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.tiles.iter().map(CompressedTile::byte_size).sum()
    }

    /// Average achieved compression factor versus the dense BF16 matrix.
    #[must_use]
    pub fn compression_factor(&self) -> f64 {
        (self.tiles.len() * crate::TILE_BYTES_BF16) as f64 / self.total_bytes() as f64
    }

    /// Measured density (averaged over tiles).
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.tiles.is_empty() {
            return 0.0;
        }
        self.tiles.iter().map(CompressedTile::density).sum::<f64>() / self.tiles.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = WeightMatrix::zeros(20, 40);
        assert_eq!(m.rows(), 20);
        assert_eq!(m.cols(), 40);
        assert_eq!(m.elems(), 800);
        assert_eq!(m.density(), 0.0);
        assert_eq!(m.bf16_bytes(), 1600);
    }

    #[test]
    fn from_data_validation() {
        assert!(WeightMatrix::from_data(2, 2, vec![1.0; 4]).is_ok());
        assert!(WeightMatrix::from_data(2, 2, vec![1.0; 3]).is_err());
        assert!(WeightMatrix::from_data(0, 2, vec![]).is_err());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = WeightMatrix::zeros(16, 32);
        m.set(5, 7, 2.5);
        assert_eq!(m.get(5, 7), 2.5);
        assert_eq!(m.data()[5 * 32 + 7], 2.5);
        m.data_mut()[0] = 1.0;
        assert_eq!(m.get(0, 0), 1.0);
    }

    #[test]
    fn tiling_dimensions_round_up() {
        let m = WeightMatrix::zeros(17, 33);
        assert_eq!(m.tile_rows(), 2);
        assert_eq!(m.tile_cols(), 2);
        assert_eq!(m.tile_count(), 4);
        let exact = WeightMatrix::zeros(32, 64);
        assert_eq!(exact.tile_count(), 2 * 2);
    }

    #[test]
    fn tile_extraction_pads_with_zeros() {
        let mut m = WeightMatrix::zeros(17, 33);
        m.set(16, 32, 3.0);
        m.set(0, 0, 1.0);
        let t00 = m.tile(0, 0);
        assert_eq!(t00.get(0, 0).to_f32(), 1.0);
        let t11 = m.tile(1, 1);
        assert_eq!(t11.get(0, 0).to_f32(), 3.0);
        // Everything beyond the edge is zero padding.
        assert_eq!(t11.get(1, 1).to_f32(), 0.0);
        assert_eq!(t11.nonzero_count(), 1);
    }

    #[test]
    fn density_counts_nonzeros() {
        let mut m = WeightMatrix::zeros(4, 4);
        m.set(0, 0, 1.0);
        m.set(1, 1, -1.0);
        assert!((m.density() - 2.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn compressed_matrix_requires_matching_tile_count() {
        let scheme = CompressionScheme::bf8_dense();
        let err = CompressedMatrix::new(scheme, 16, 32, vec![]);
        assert!(err.is_err());
    }
}
