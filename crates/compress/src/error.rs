//! Error type for the compression pipeline.

use deca_numerics::FormatError;

/// Errors produced while compressing or decompressing weights.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressError {
    /// The requested density is not in `(0, 1]`.
    InvalidDensity(f64),
    /// Matrix dimensions are not positive or not tileable as required.
    InvalidShape {
        /// Requested rows.
        rows: usize,
        /// Requested columns.
        cols: usize,
        /// Explanation of the constraint that was violated.
        reason: &'static str,
    },
    /// A compressed tile is internally inconsistent (e.g. bitmask popcount
    /// does not match the number of stored nonzeros).
    CorruptTile {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// An underlying numeric-format error.
    Format(FormatError),
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::InvalidDensity(d) => {
                write!(f, "density {d} is outside the valid range (0, 1]")
            }
            CompressError::InvalidShape { rows, cols, reason } => {
                write!(f, "invalid matrix shape {rows}x{cols}: {reason}")
            }
            CompressError::CorruptTile { reason } => write!(f, "corrupt compressed tile: {reason}"),
            CompressError::Format(e) => write!(f, "numeric format error: {e}"),
        }
    }
}

impl std::error::Error for CompressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompressError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FormatError> for CompressError {
    fn from(e: FormatError) -> Self {
        CompressError::Format(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CompressError::InvalidDensity(1.5)
            .to_string()
            .contains("1.5"));
        let e = CompressError::InvalidShape {
            rows: 3,
            cols: 5,
            reason: "rows must be a multiple of 16",
        };
        assert!(e.to_string().contains("3x5"));
        assert!(CompressError::CorruptTile {
            reason: "popcount mismatch".into()
        }
        .to_string()
        .contains("popcount"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: std::error::Error + Send + Sync + 'static>() {}
        check::<CompressError>();
    }

    #[test]
    fn format_error_converts() {
        let fe = FormatError::InvalidGroupSize(0);
        let ce: CompressError = fe.into();
        assert!(matches!(ce, CompressError::Format(_)));
    }
}
