//! The bitmask sparse format.
//!
//! Unstructured sparsity is encoded with a bitmask that has one bit per
//! element of the original (dense) tile: a `1` marks a nonzero, whose value
//! is stored in the contiguous nonzero array (§2.2). Reconstructing the dense
//! tile requires, for every dense position, the running count of `1`s before
//! it — exactly what DECA's POPCNT + parallel-prefix-sum circuitry computes
//! to drive the expansion crossbar (§6.1).

/// A bitmask over `len` elements (one bit each), stored LSB-first in 64-bit
/// words.
///
/// ```
/// use deca_compress::Bitmask;
/// let mut m = Bitmask::new(8);
/// m.set(1, true);
/// m.set(5, true);
/// assert_eq!(m.popcount(), 2);
/// assert_eq!(m.expansion_indices(), vec![None, Some(0), None, None, None, Some(1), None, None]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Bitmask {
    len: usize,
    words: Vec<u64>,
}

impl Bitmask {
    /// Creates an all-zero bitmask over `len` elements.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Bitmask {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Builds a bitmask from a dense slice, marking every position whose
    /// predicate returns `true`.
    #[must_use]
    pub fn from_predicate<T>(values: &[T], mut is_nonzero: impl FnMut(&T) -> bool) -> Self {
        let mut mask = Bitmask::new(values.len());
        for (i, v) in values.iter().enumerate() {
            if is_nonzero(v) {
                mask.set(i, true);
            }
        }
        mask
    }

    /// Number of elements covered by the mask.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the mask covers zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let word = index / 64;
        let bit = index % 64;
        if value {
            self.words[word] |= 1 << bit;
        } else {
            self.words[word] &= !(1 << bit);
        }
    }

    /// Reads the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[must_use]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Total number of set bits (number of nonzeros).
    #[must_use]
    pub fn popcount(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits in the half-open range `[start, end)`.
    ///
    /// This is what DECA's per-window POPCNT computes to find the size of a
    /// vOp's window in the sparse quantized queue.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    #[must_use]
    pub fn popcount_range(&self, start: usize, end: usize) -> usize {
        assert!(
            start <= end && end <= self.len,
            "invalid range {start}..{end}"
        );
        (start..end).filter(|&i| self.get(i)).count()
    }

    /// Densities of set bits per fixed-size window, used to characterize
    /// bubble behaviour of the DECA pipeline.
    #[must_use]
    pub fn window_popcounts(&self, window: usize) -> Vec<usize> {
        assert!(window > 0, "window size must be positive");
        (0..self.len)
            .step_by(window)
            .map(|start| self.popcount_range(start, (start + window).min(self.len)))
            .collect()
    }

    /// For every dense position, the index into the contiguous nonzero array
    /// (`Some(k)` for the k-th nonzero, `None` for a zero). This is the
    /// output of the parallel prefix sum that controls the expansion
    /// crossbar.
    #[must_use]
    pub fn expansion_indices(&self) -> Vec<Option<usize>> {
        let mut out = Vec::with_capacity(self.len);
        let mut running = 0usize;
        for i in 0..self.len {
            if self.get(i) {
                out.push(Some(running));
                running += 1;
            } else {
                out.push(None);
            }
        }
        out
    }

    /// Exclusive prefix sum of set bits: entry `i` is the number of nonzeros
    /// strictly before position `i`. Length is `len + 1`; the final entry is
    /// the total popcount.
    #[must_use]
    pub fn prefix_sums(&self) -> Vec<usize> {
        let mut sums = Vec::with_capacity(self.len + 1);
        let mut running = 0usize;
        sums.push(0);
        for i in 0..self.len {
            if self.get(i) {
                running += 1;
            }
            sums.push(running);
        }
        sums
    }

    /// Positions of the set bits in ascending order.
    #[must_use]
    pub fn nonzero_positions(&self) -> Vec<usize> {
        (0..self.len).filter(|&i| self.get(i)).collect()
    }

    /// The backing 64-bit words, LSB-first (bit `i` of the mask is bit
    /// `i % 64` of word `i / 64`). Bits past `len` are always zero.
    ///
    /// This is the view DECA's POPCNT + parallel-prefix-sum circuitry
    /// consumes, and what the word-parallel decompression engine iterates.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Serializes the mask into bytes, LSB-first, exactly as it is stored in
    /// memory (`len/8` bytes, rounded up).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let n_bytes = self.len.div_ceil(8);
        let mut bytes = vec![0u8; n_bytes];
        for i in 0..self.len {
            if self.get(i) {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        bytes
    }

    /// Reconstructs a mask of `len` bits from its byte serialization.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is too short for `len` bits.
    #[must_use]
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(
            bytes.len() * 8 >= len,
            "byte buffer too short for {len} bits"
        );
        let mut mask = Bitmask::new(len);
        for i in 0..len {
            if (bytes[i / 8] >> (i % 8)) & 1 == 1 {
                mask.set(i, true);
            }
        }
        mask
    }

    /// The storage footprint of this bitmask in bytes.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.len.div_ceil(8)
    }

    /// Fraction of set bits.
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.popcount() as f64 / self.len as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mask() -> Bitmask {
        let mut m = Bitmask::new(512);
        for i in (0..512).step_by(3) {
            m.set(i, true);
        }
        m
    }

    #[test]
    fn new_mask_is_empty() {
        let m = Bitmask::new(512);
        assert_eq!(m.len(), 512);
        assert_eq!(m.popcount(), 0);
        assert!(!m.is_empty());
        assert!(Bitmask::new(0).is_empty());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = Bitmask::new(130);
        m.set(0, true);
        m.set(63, true);
        m.set(64, true);
        m.set(129, true);
        assert!(m.get(0) && m.get(63) && m.get(64) && m.get(129));
        assert!(!m.get(1) && !m.get(65));
        m.set(64, false);
        assert!(!m.get(64));
        assert_eq!(m.popcount(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let m = Bitmask::new(8);
        let _ = m.get(8);
    }

    #[test]
    fn popcount_range_counts_correctly() {
        let m = sample_mask();
        // Bits 0,3,6,... every third bit set.
        assert_eq!(m.popcount_range(0, 9), 3);
        assert_eq!(m.popcount_range(1, 3), 0);
        assert_eq!(m.popcount_range(0, 512), m.popcount());
        assert_eq!(m.popcount(), 171);
    }

    #[test]
    fn window_popcounts_cover_whole_mask() {
        let m = sample_mask();
        let windows = m.window_popcounts(32);
        assert_eq!(windows.len(), 16);
        assert_eq!(windows.iter().sum::<usize>(), m.popcount());
    }

    #[test]
    fn expansion_indices_are_consistent_with_prefix_sums() {
        let m = sample_mask();
        let idx = m.expansion_indices();
        let sums = m.prefix_sums();
        assert_eq!(idx.len(), 512);
        assert_eq!(sums.len(), 513);
        for (i, entry) in idx.iter().enumerate() {
            match entry {
                Some(k) => assert_eq!(*k, sums[i], "position {i}"),
                None => assert_eq!(sums[i + 1], sums[i], "position {i}"),
            }
        }
        assert_eq!(sums[512], m.popcount());
    }

    #[test]
    fn nonzero_positions_match_predicate_construction() {
        let values = [0.0f32, 1.0, 0.0, -2.0, 3.0, 0.0];
        let m = Bitmask::from_predicate(&values, |v| *v != 0.0);
        assert_eq!(m.nonzero_positions(), vec![1, 3, 4]);
        assert_eq!(m.density(), 0.5);
    }

    #[test]
    fn byte_serialization_roundtrip() {
        let m = sample_mask();
        let bytes = m.to_bytes();
        assert_eq!(bytes.len(), 64);
        assert_eq!(m.byte_size(), 64);
        let back = Bitmask::from_bytes(&bytes, 512);
        assert_eq!(back, m);
    }

    #[test]
    fn byte_serialization_is_lsb_first() {
        let mut m = Bitmask::new(16);
        m.set(0, true);
        m.set(9, true);
        let bytes = m.to_bytes();
        assert_eq!(bytes, vec![0b0000_0001, 0b0000_0010]);
    }

    #[test]
    fn non_multiple_of_64_lengths_work() {
        let mut m = Bitmask::new(100);
        for i in 0..100 {
            m.set(i, i % 7 == 0);
        }
        assert_eq!(m.popcount(), (0..100).filter(|i| i % 7 == 0).count());
        let back = Bitmask::from_bytes(&m.to_bytes(), 100);
        assert_eq!(back, m);
    }
}
