//! Compression schemes: quantization format × density × group quantization.
//!
//! A scheme determines how many bytes a compressed weight tile occupies in
//! memory and therefore the matriX-to-Memory arithmetic intensity `AIX_M`
//! that drives the Roof-Surface model. The byte accounting follows §2.2:
//! nonzeros are stored contiguously in the quantized format, a bitmask with
//! one bit per original element is added only when the matrix is sparse, and
//! MX-style formats add one 8-bit shared scale per 32-element group.

use deca_numerics::{mx::MX_GROUP_SIZE, QuantFormat};

use crate::{CompressError, TILE_ELEMS};

/// A weight-compression scheme, the "kernel signature" knob of the paper.
///
/// ```
/// use deca_compress::CompressionScheme;
/// let q8_20 = CompressionScheme::bf8_sparse(0.2);
/// assert_eq!(q8_20.label(), "Q8_20%");
/// // 512*0.2 nonzero bytes + 64 bitmask bytes
/// assert_eq!(q8_20.expected_tile_bytes(), 166.4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CompressionScheme {
    format: QuantFormat,
    density: f64,
    group_size: Option<usize>,
}

impl CompressionScheme {
    /// Creates a scheme with explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidDensity`] if `density` is not in
    /// `(0, 1]`.
    pub fn new(
        format: QuantFormat,
        density: f64,
        group_size: Option<usize>,
    ) -> Result<Self, CompressError> {
        if !(density > 0.0 && density <= 1.0 && density.is_finite()) {
            return Err(CompressError::InvalidDensity(density));
        }
        if let Some(0) = group_size {
            return Err(CompressError::Format(
                deca_numerics::FormatError::InvalidGroupSize(0),
            ));
        }
        Ok(CompressionScheme {
            format,
            density,
            group_size,
        })
    }

    /// The uncompressed dense BF16 baseline ("BF16" / "Q16" at 100 %).
    #[must_use]
    pub fn bf16_dense() -> Self {
        CompressionScheme {
            format: QuantFormat::Bf16,
            density: 1.0,
            group_size: None,
        }
    }

    /// BF16 values with unstructured sparsity ("Q16_d%").
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]`.
    #[must_use]
    pub fn bf16_sparse(density: f64) -> Self {
        CompressionScheme::new(QuantFormat::Bf16, density, None)
            .expect("caller provided an invalid density")
    }

    /// Dense BF8 (E5M2) quantization ("Q8" / "BF8").
    #[must_use]
    pub fn bf8_dense() -> Self {
        CompressionScheme {
            format: QuantFormat::Bf8,
            density: 1.0,
            group_size: None,
        }
    }

    /// BF8 quantization with unstructured sparsity ("Q8_d%").
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]`.
    #[must_use]
    pub fn bf8_sparse(density: f64) -> Self {
        CompressionScheme::new(QuantFormat::Bf8, density, None)
            .expect("caller provided an invalid density")
    }

    /// MXFP4: dense 4-bit E2M1 with a shared scale per 32 weights ("Q4").
    #[must_use]
    pub fn mxfp4() -> Self {
        CompressionScheme {
            format: QuantFormat::Fp4,
            density: 1.0,
            group_size: Some(MX_GROUP_SIZE),
        }
    }

    /// MXFP4 with additional unstructured sparsity (not in libxsmm, but
    /// supported by DECA).
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]`.
    #[must_use]
    pub fn mxfp4_sparse(density: f64) -> Self {
        CompressionScheme::new(QuantFormat::Fp4, density, Some(MX_GROUP_SIZE))
            .expect("caller provided an invalid density")
    }

    /// The quantized element format.
    #[must_use]
    pub fn format(&self) -> QuantFormat {
        self.format
    }

    /// Fraction of nonzero weights in `(0, 1]`.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.density
    }

    /// Sparsity (`1 - density`).
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density
    }

    /// True if the scheme prunes weights (density < 100 %) and therefore
    /// needs a bitmask and an expansion step.
    #[must_use]
    pub fn is_sparse(&self) -> bool {
        self.density < 1.0
    }

    /// True if the scheme re-encodes values in a sub-16-bit format and
    /// therefore needs a dequantization step.
    #[must_use]
    pub fn is_quantized(&self) -> bool {
        self.format != QuantFormat::Bf16
    }

    /// True if the scheme is the uncompressed dense BF16 baseline — no
    /// dequantization and no expansion, so DECA does not apply (the paper
    /// leaves these Table 4 cells empty).
    #[must_use]
    pub fn is_uncompressed(&self) -> bool {
        !self.is_quantized() && !self.is_sparse()
    }

    /// Group size for group quantization, if any.
    #[must_use]
    pub fn group_size(&self) -> Option<usize> {
        self.group_size
    }

    /// Bits per stored nonzero element.
    #[must_use]
    pub fn element_bits(&self) -> u32 {
        u32::from(self.format.bits())
    }

    /// Expected bytes of nonzero payload per tile (`512·d·bits/8`).
    #[must_use]
    pub fn expected_nonzero_bytes(&self) -> f64 {
        TILE_ELEMS as f64 * self.density * f64::from(self.format.bits()) / 8.0
    }

    /// Bitmask bytes per tile (64 when sparse, 0 when dense).
    #[must_use]
    pub fn bitmask_bytes(&self) -> usize {
        if self.is_sparse() {
            TILE_ELEMS / 8
        } else {
            0
        }
    }

    /// Scale-factor bytes per tile (one byte per group when group-quantized).
    #[must_use]
    pub fn scale_bytes(&self) -> usize {
        match self.group_size {
            Some(g) => TILE_ELEMS.div_ceil(g),
            None => 0,
        }
    }

    /// Expected total bytes of a compressed tile in memory.
    ///
    /// This is `1/AIX_M` in the Roof-Surface model.
    #[must_use]
    pub fn expected_tile_bytes(&self) -> f64 {
        self.expected_nonzero_bytes() + self.bitmask_bytes() as f64 + self.scale_bytes() as f64
    }

    /// The matriX-to-Memory arithmetic intensity `AIX_M` (matrix ops per
    /// byte loaded from memory), §4.1.
    #[must_use]
    pub fn aix_m(&self) -> f64 {
        1.0 / self.expected_tile_bytes()
    }

    /// Exact compression factor versus the dense BF16 tile, using the full
    /// byte accounting (nonzeros + bitmask + scales).
    #[must_use]
    pub fn compression_factor(&self) -> f64 {
        crate::TILE_BYTES_BF16 as f64 / self.expected_tile_bytes()
    }

    /// The simplified compression-factor formula quoted in §2.2:
    /// `16 / (Q·d + 1)`, where the `+1` is the bitmask bit.
    ///
    /// For dense schemes the bitmask term is dropped.
    #[must_use]
    pub fn compression_factor_paper(&self) -> f64 {
        let bitmask_bit = if self.is_sparse() { 1.0 } else { 0.0 };
        16.0 / (f64::from(self.format.bits()) * self.density + bitmask_bit)
    }

    /// The traditional FLOP-per-byte arithmetic intensity of a compressed
    /// GeMM with batch size `n` (used for the 2D roofline of Fig. 3).
    #[must_use]
    pub fn flops_per_byte(&self, n: usize) -> f64 {
        512.0 * n as f64 * self.aix_m()
    }

    /// The paper's label for this scheme, e.g. `Q8_20%`, `Q4`, `Q16`.
    #[must_use]
    pub fn label(&self) -> String {
        let base = self.format.short_name();
        if self.is_sparse() {
            format!("{base}_{:.0}%", self.density * 100.0)
        } else {
            base.to_string()
        }
    }
}

impl std::fmt::Display for CompressionScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Named collections of schemes used throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeSet;

impl SchemeSet {
    /// The twelve compressed schemes of Figures 12/13, ordered by increasing
    /// compression factor exactly as the paper plots them.
    #[must_use]
    pub fn paper_evaluation() -> Vec<CompressionScheme> {
        vec![
            CompressionScheme::bf16_sparse(0.5),
            CompressionScheme::bf8_dense(),
            CompressionScheme::bf16_sparse(0.3),
            CompressionScheme::bf8_sparse(0.5),
            CompressionScheme::mxfp4(),
            CompressionScheme::bf16_sparse(0.2),
            CompressionScheme::bf8_sparse(0.3),
            CompressionScheme::bf16_sparse(0.1),
            CompressionScheme::bf8_sparse(0.2),
            CompressionScheme::bf16_sparse(0.05),
            CompressionScheme::bf8_sparse(0.1),
            CompressionScheme::bf8_sparse(0.05),
        ]
    }

    /// The Q8 density sweep used in Table 3 and Fig. 17.
    #[must_use]
    pub fn q8_density_sweep() -> Vec<CompressionScheme> {
        vec![
            CompressionScheme::bf8_dense(),
            CompressionScheme::bf8_sparse(0.5),
            CompressionScheme::bf8_sparse(0.3),
            CompressionScheme::bf8_sparse(0.2),
            CompressionScheme::bf8_sparse(0.1),
            CompressionScheme::bf8_sparse(0.05),
        ]
    }

    /// The schemes evaluated end-to-end on LLMs in Table 4.
    #[must_use]
    pub fn llm_evaluation() -> Vec<CompressionScheme> {
        vec![
            CompressionScheme::bf16_dense(),
            CompressionScheme::mxfp4(),
            CompressionScheme::bf8_sparse(0.2),
            CompressionScheme::bf8_sparse(0.05),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn byte_accounting_matches_paper_examples() {
        // Dense BF16: 1024 bytes, no bitmask, no scales.
        assert_eq!(
            CompressionScheme::bf16_dense().expected_tile_bytes(),
            1024.0
        );
        // Dense BF8: 512 bytes.
        assert_eq!(CompressionScheme::bf8_dense().expected_tile_bytes(), 512.0);
        // MXFP4: 256 payload + 16 scale bytes.
        assert_eq!(CompressionScheme::mxfp4().expected_tile_bytes(), 272.0);
        // BF8 at 50 % density: 256 payload + 64 bitmask.
        assert_eq!(
            CompressionScheme::bf8_sparse(0.5).expected_tile_bytes(),
            320.0
        );
        // BF16 at 30 % density: 307.2 + 64.
        assert!(close(
            CompressionScheme::bf16_sparse(0.3).expected_tile_bytes(),
            371.2,
            1e-9
        ));
        // BF8 at 5 % density: 25.6 + 64.
        assert!(close(
            CompressionScheme::bf8_sparse(0.05).expected_tile_bytes(),
            89.6,
            1e-9
        ));
    }

    #[test]
    fn density_validation() {
        assert!(CompressionScheme::new(QuantFormat::Bf8, 0.0, None).is_err());
        assert!(CompressionScheme::new(QuantFormat::Bf8, 1.5, None).is_err());
        assert!(CompressionScheme::new(QuantFormat::Bf8, f64::NAN, None).is_err());
        assert!(CompressionScheme::new(QuantFormat::Bf8, 1.0, None).is_ok());
        assert!(CompressionScheme::new(QuantFormat::Fp4, 0.5, Some(0)).is_err());
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(CompressionScheme::bf16_dense().label(), "Q16");
        assert_eq!(CompressionScheme::bf8_dense().label(), "Q8");
        assert_eq!(CompressionScheme::mxfp4().label(), "Q4");
        assert_eq!(CompressionScheme::bf8_sparse(0.2).label(), "Q8_20%");
        assert_eq!(CompressionScheme::bf16_sparse(0.05).label(), "Q16_5%");
    }

    #[test]
    fn compression_factor_paper_formula() {
        // §2.2: 16/(Q·d + 1). Q8 at 10 % density: 16/1.8 = 8.89.
        let s = CompressionScheme::bf8_sparse(0.1);
        assert!(close(s.compression_factor_paper(), 16.0 / 1.8, 1e-9));
        // Dense Q8: 16/8 = 2.
        assert!(close(
            CompressionScheme::bf8_dense().compression_factor_paper(),
            2.0,
            1e-9
        ));
    }

    #[test]
    fn exact_compression_factor_uses_full_accounting() {
        let s = CompressionScheme::mxfp4();
        assert!(close(s.compression_factor(), 1024.0 / 272.0, 1e-9));
        let dense = CompressionScheme::bf16_dense();
        assert!(close(dense.compression_factor(), 1.0, 1e-9));
    }

    #[test]
    fn aix_m_is_reciprocal_of_bytes() {
        for s in SchemeSet::paper_evaluation() {
            assert!(close(s.aix_m() * s.expected_tile_bytes(), 1.0, 1e-12));
        }
    }

    #[test]
    fn flops_per_byte_scales_with_batch() {
        let s = CompressionScheme::bf8_dense();
        assert!(close(s.flops_per_byte(1), 512.0 / 512.0, 1e-12));
        assert!(close(s.flops_per_byte(4), 4.0 * 512.0 / 512.0, 1e-12));
    }

    #[test]
    fn paper_evaluation_is_ordered_by_compression_factor() {
        let schemes = SchemeSet::paper_evaluation();
        assert_eq!(schemes.len(), 12);
        for pair in schemes.windows(2) {
            assert!(
                pair[0].compression_factor() <= pair[1].compression_factor() + 1e-9,
                "{} ({}) should not exceed {} ({})",
                pair[0],
                pair[0].compression_factor(),
                pair[1],
                pair[1].compression_factor()
            );
        }
    }

    #[test]
    fn sparse_and_quantized_flags() {
        let s = CompressionScheme::bf8_sparse(0.3);
        assert!(s.is_sparse());
        assert!(s.is_quantized());
        let d = CompressionScheme::bf16_dense();
        assert!(!d.is_sparse());
        assert!(!d.is_quantized());
        let q16s = CompressionScheme::bf16_sparse(0.5);
        assert!(q16s.is_sparse());
        assert!(!q16s.is_quantized());
    }

    #[test]
    fn scheme_sets_have_expected_sizes() {
        assert_eq!(SchemeSet::q8_density_sweep().len(), 6);
        assert_eq!(SchemeSet::llm_evaluation().len(), 4);
    }

    #[test]
    fn scale_bytes_only_for_group_quantization() {
        assert_eq!(CompressionScheme::mxfp4().scale_bytes(), 16);
        assert_eq!(CompressionScheme::bf8_dense().scale_bytes(), 0);
        assert_eq!(CompressionScheme::bf16_sparse(0.5).scale_bytes(), 0);
    }

    #[test]
    fn bitmask_bytes_only_when_sparse() {
        assert_eq!(CompressionScheme::bf8_sparse(0.5).bitmask_bytes(), 64);
        assert_eq!(CompressionScheme::bf8_dense().bitmask_bytes(), 0);
    }
}
