//! Synthetic weight generation.
//!
//! The paper evaluates on real pruned/quantized LLM weights; those are not
//! available here, so evaluation matrices are generated synthetically. What
//! matters for performance is (1) the density, (2) the *spatial* distribution
//! of nonzeros — the paper assumes uniformly distributed unstructured
//! sparsity, which drives DECA's binomial bubble statistics — and (3) a value
//! distribution broadly similar to trained weights (zero-mean, small
//! standard deviation). All three are controlled here.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::WeightMatrix;

/// How nonzero positions are chosen when generating a sparse matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SparsityPattern {
    /// Every element is independently nonzero with probability `density`
    /// (the paper's uniform unstructured-sparsity assumption).
    #[default]
    Bernoulli,
    /// Exactly `round(density · n)` nonzeros per 512-element tile-sized
    /// block, at uniformly random positions (what magnitude pruning with a
    /// per-block budget produces).
    ExactPerBlock,
}

/// Deterministic, seedable generator of synthetic weight matrices.
#[derive(Debug, Clone)]
pub struct WeightGenerator {
    seed: u64,
    std_dev: f64,
    pattern: SparsityPattern,
}

impl WeightGenerator {
    /// Creates a generator with the given seed, a weight standard deviation
    /// of 0.02 (typical of trained transformer FC layers) and Bernoulli
    /// sparsity.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        WeightGenerator {
            seed,
            std_dev: 0.02,
            pattern: SparsityPattern::Bernoulli,
        }
    }

    /// Sets the standard deviation of generated weights.
    #[must_use]
    pub fn with_std_dev(mut self, std_dev: f64) -> Self {
        self.std_dev = std_dev;
        self
    }

    /// Sets the sparsity pattern.
    #[must_use]
    pub fn with_pattern(mut self, pattern: SparsityPattern) -> Self {
        self.pattern = pattern;
        self
    }

    fn rng(&self, salt: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Samples an approximately normal value using the sum of uniform
    /// deviates (Irwin–Hall with 12 terms), which avoids needing a dedicated
    /// distributions crate.
    fn sample_normalish(rng: &mut StdRng, std_dev: f64) -> f32 {
        let sum: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
        ((sum - 6.0) * std_dev) as f32
    }

    /// Generates a fully dense matrix with zero-mean weights.
    #[must_use]
    pub fn dense_matrix(&self, rows: usize, cols: usize) -> WeightMatrix {
        let mut rng = self.rng(0xD15E);
        let mut m = WeightMatrix::zeros(rows, cols);
        for v in m.data_mut() {
            // Ensure strictly nonzero values so that the measured density of
            // a "dense" matrix is exactly 1.0.
            let mut x = Self::sample_normalish(&mut rng, self.std_dev);
            if x == 0.0 {
                x = self.std_dev as f32 * 0.1;
            }
            *v = x;
        }
        m
    }

    /// Generates a sparse matrix with the requested density of nonzeros.
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]`.
    #[must_use]
    pub fn sparse_matrix(&self, rows: usize, cols: usize, density: f64) -> WeightMatrix {
        assert!(
            density > 0.0 && density <= 1.0,
            "density must be in (0, 1], got {density}"
        );
        let mut rng = self.rng(0x5BA5);
        let mut m = WeightMatrix::zeros(rows, cols);
        match self.pattern {
            SparsityPattern::Bernoulli => {
                let bern =
                    rand::distributions::Bernoulli::new(density).expect("density validated above");
                for v in m.data_mut() {
                    if bern.sample(&mut rng) {
                        let mut x = Self::sample_normalish(&mut rng, self.std_dev);
                        if x == 0.0 {
                            x = self.std_dev as f32 * 0.1;
                        }
                        *v = x;
                    }
                }
            }
            SparsityPattern::ExactPerBlock => {
                let std_dev = self.std_dev;
                let data = m.data_mut();
                let block = crate::TILE_ELEMS;
                let mut start = 0;
                while start < data.len() {
                    let end = (start + block).min(data.len());
                    let len = end - start;
                    let k = ((len as f64) * density).round() as usize;
                    // Choose k distinct positions via partial Fisher–Yates.
                    let mut positions: Vec<usize> = (0..len).collect();
                    for i in 0..k.min(len) {
                        let j = rng.gen_range(i..len);
                        positions.swap(i, j);
                    }
                    for &p in positions.iter().take(k.min(len)) {
                        let mut x = Self::sample_normalish(&mut rng, std_dev);
                        if x == 0.0 {
                            x = std_dev as f32 * 0.1;
                        }
                        data[start + p] = x;
                    }
                    start = end;
                }
            }
        }
        m
    }

    /// Generates a matrix shaped like one of the paper's "large FC layer"
    /// GeMMs (≈250 M parameters): 8192 × 30720. Intended for the compressed
    /// GeMM benchmarks; scaled-down variants should be preferred in tests.
    #[must_use]
    pub fn large_fc_matrix(&self, density: f64) -> WeightMatrix {
        self.sparse_matrix(8192, 30720, density)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_matrix_is_fully_dense_and_deterministic() {
        let g = WeightGenerator::new(42);
        let a = g.dense_matrix(32, 64);
        let b = g.dense_matrix(32, 64);
        assert_eq!(a, b, "same seed must give identical matrices");
        assert_eq!(a.density(), 1.0);
        let other = WeightGenerator::new(43).dense_matrix(32, 64);
        assert_ne!(a, other, "different seeds must differ");
    }

    #[test]
    fn sparse_matrix_hits_target_density_approximately() {
        let g = WeightGenerator::new(1);
        let m = g.sparse_matrix(128, 128, 0.3);
        let d = m.density();
        assert!((d - 0.3).abs() < 0.05, "measured density {d}");
    }

    #[test]
    fn exact_per_block_density_is_exact() {
        let g = WeightGenerator::new(2).with_pattern(SparsityPattern::ExactPerBlock);
        let m = g.sparse_matrix(16, 32 * 4, 0.25); // 4 tile-sized blocks
        let d = m.density();
        assert!((d - 0.25).abs() < 1e-9, "measured density {d}");
    }

    #[test]
    fn weights_are_zero_mean_and_small() {
        let g = WeightGenerator::new(3).with_std_dev(0.02);
        let m = g.dense_matrix(64, 64);
        let mean: f64 = m.data().iter().map(|v| f64::from(*v)).sum::<f64>() / m.elems() as f64;
        let max = m.data().iter().fold(0f32, |acc, v| acc.max(v.abs()));
        assert!(mean.abs() < 0.005, "mean {mean}");
        assert!(max < 0.2, "max |w| {max}");
    }

    #[test]
    #[should_panic(expected = "density")]
    fn invalid_density_panics() {
        let _ = WeightGenerator::new(0).sparse_matrix(8, 8, 0.0);
    }

    #[test]
    fn full_density_sparse_equals_dense_density() {
        let g = WeightGenerator::new(9);
        let m = g.sparse_matrix(32, 32, 1.0);
        assert_eq!(m.density(), 1.0);
    }
}
