//! Offline weight compression (Fig. 1, left).
//!
//! Compression happens once, after training: weights are (optionally)
//! magnitude-pruned to the scheme's target density, quantized to the
//! scheme's element format (with per-group power-of-two scales for MX-style
//! formats), and packed into the three per-tile memory structures (nonzero
//! array, bitmask, scale factors).

use deca_numerics::{mx::ScaleE8M0, Bf16, IntCodec, QuantFormat};

use crate::{
    tile::pack_codes, Bitmask, CompressError, CompressedMatrix, CompressedTile, CompressionScheme,
    DenseTile, TILE_COLS, TILE_ELEMS,
};

/// Offline compressor for a single [`CompressionScheme`].
///
/// ```
/// use deca_compress::{Compressor, CompressionScheme, DenseTile};
/// let compressor = Compressor::new(CompressionScheme::bf8_dense());
/// let tile = DenseTile::zero();
/// let compressed = compressor.compress_tile(&tile)?;
/// assert_eq!(compressed.byte_size(), 512);
/// # Ok::<(), deca_compress::CompressError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Compressor {
    scheme: CompressionScheme,
    prune_to_density: bool,
}

impl Compressor {
    /// Creates a compressor that magnitude-prunes each tile down to the
    /// scheme's density before packing (the default, matching the offline
    /// pruning flow of SparseGPT-style methods).
    #[must_use]
    pub fn new(scheme: CompressionScheme) -> Self {
        Compressor {
            scheme,
            prune_to_density: true,
        }
    }

    /// Disables magnitude pruning: only values that are already exactly zero
    /// are treated as pruned. Useful when the input matrix was generated
    /// with the desired sparsity pattern.
    #[must_use]
    pub fn without_pruning(mut self) -> Self {
        self.prune_to_density = false;
        self
    }

    /// The scheme this compressor packs for.
    #[must_use]
    pub fn scheme(&self) -> &CompressionScheme {
        &self.scheme
    }

    /// Magnitude-prunes a tile's values to the scheme density, returning the
    /// surviving values (others forced to zero).
    fn pruned_values(&self, tile: &DenseTile) -> Vec<f32> {
        let mut values: Vec<f32> = tile.elements().iter().map(|b| b.to_f32()).collect();
        if !self.scheme.is_sparse() {
            return values;
        }
        let keep = ((TILE_ELEMS as f64) * self.scheme.density()).round() as usize;
        let nonzero_now = values.iter().filter(|v| **v != 0.0).count();
        if self.prune_to_density && nonzero_now > keep {
            // Find the magnitude threshold of the keep-th largest value.
            let mut magnitudes: Vec<f32> = values.iter().map(|v| v.abs()).collect();
            magnitudes.sort_by(|a, b| b.partial_cmp(a).expect("finite weights"));
            let threshold = magnitudes[keep.saturating_sub(1).min(magnitudes.len() - 1)];
            let mut kept = 0usize;
            for v in &mut values {
                if v.abs() >= threshold && *v != 0.0 && kept < keep {
                    kept += 1;
                } else {
                    *v = 0.0;
                }
            }
        }
        values
    }

    /// Computes per-group scales for group-quantized formats, one per
    /// `group_size` consecutive dense positions.
    fn group_scales(&self, values: &[f32]) -> Vec<ScaleE8M0> {
        let Some(group) = self.scheme.group_size() else {
            return Vec::new();
        };
        let element_emax = match self.scheme.format() {
            QuantFormat::Int8 => 7, // max code 127 < 2^7
            QuantFormat::Int4 => 3, // max code 7 < 2^3
            fmt => fmt
                .minifloat()
                .map_or(0, |mf| mf.max_value().log2().floor() as i32),
        };
        values
            .chunks(group)
            .map(|chunk| {
                let max_abs = chunk.iter().fold(0f32, |m, v| m.max(v.abs()));
                ScaleE8M0::for_group(max_abs, element_emax)
            })
            .collect()
    }

    /// Encodes one weight value into its storage code under an optional
    /// group scale.
    fn encode_value(&self, value: f32, scale: Option<ScaleE8M0>) -> u16 {
        let scaled = match scale {
            Some(s) => value / s.value(),
            None => value,
        };
        match self.scheme.format() {
            QuantFormat::Bf16 => Bf16::from_f32(scaled).to_bits(),
            QuantFormat::Int8 => {
                u16::from(IntCodec::int8().to_storage((scaled.round().clamp(-127.0, 127.0)) as i8))
            }
            QuantFormat::Int4 => {
                u16::from(IntCodec::int4().to_storage((scaled.round().clamp(-7.0, 7.0)) as i8))
            }
            fmt => {
                let mf = fmt
                    .minifloat()
                    .expect("all non-BF16 float formats have a minifloat codec");
                u16::from(mf.encode(scaled))
            }
        }
    }

    /// Compresses a single dense tile.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::CorruptTile`] if the assembled tile fails
    /// validation (this indicates an internal bug rather than bad input).
    pub fn compress_tile(&self, tile: &DenseTile) -> Result<CompressedTile, CompressError> {
        let values = self.pruned_values(tile);
        let scales = self.group_scales(&values);

        let (codes, nonzero_count, bitmask) = if self.scheme.is_sparse() {
            let mask = Bitmask::from_predicate(&values, |v| *v != 0.0);
            let group = self.scheme.group_size().unwrap_or(usize::MAX);
            let codes: Vec<u16> = values
                .iter()
                .enumerate()
                .filter(|(_, v)| **v != 0.0)
                .map(|(i, v)| {
                    let scale = if scales.is_empty() {
                        None
                    } else {
                        Some(scales[i / group])
                    };
                    self.encode_value(*v, scale)
                })
                .collect();
            let count = codes.len();
            (codes, count, Some(mask))
        } else {
            let group = self.scheme.group_size().unwrap_or(usize::MAX);
            let codes: Vec<u16> = values
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let scale = if scales.is_empty() {
                        None
                    } else {
                        Some(scales[i / group])
                    };
                    self.encode_value(*v, scale)
                })
                .collect();
            (codes, TILE_ELEMS, None)
        };

        let payload = pack_codes(&codes, self.scheme.element_bits());
        CompressedTile::new(self.scheme, payload, nonzero_count, bitmask, scales)
    }

    /// Compresses a whole matrix tile-by-tile.
    ///
    /// # Errors
    ///
    /// Propagates any tile-level error.
    pub fn compress_matrix(
        &self,
        matrix: &crate::WeightMatrix,
    ) -> Result<CompressedMatrix, CompressError> {
        let mut tiles = Vec::with_capacity(matrix.tile_count());
        for tr in 0..matrix.tile_rows() {
            for tc in 0..matrix.tile_cols() {
                tiles.push(self.compress_tile(&matrix.tile(tr, tc))?);
            }
        }
        CompressedMatrix::new(self.scheme, matrix.rows(), matrix.cols(), tiles)
    }
}

/// Convenience free function compressing a matrix under a scheme.
///
/// # Errors
///
/// Propagates compression errors from [`Compressor::compress_matrix`].
pub fn compress(
    matrix: &crate::WeightMatrix,
    scheme: CompressionScheme,
) -> Result<CompressedMatrix, CompressError> {
    Compressor::new(scheme).compress_matrix(matrix)
}

#[allow(dead_code)]
fn _columns_per_group_sanity() {
    // One MX group (32 weights) is exactly one tile row.
    const _: () = assert!(TILE_COLS == 32);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WeightGenerator;

    #[test]
    fn dense_bf8_tile_has_512_payload_bytes() {
        let g = WeightGenerator::new(11);
        let m = g.dense_matrix(16, 32);
        let tile = m.tile(0, 0);
        let c = Compressor::new(CompressionScheme::bf8_dense());
        let ct = c.compress_tile(&tile).expect("compress");
        assert_eq!(ct.payload_bytes(), 512);
        assert_eq!(ct.byte_size(), 512);
        assert!(ct.bitmask().is_none());
        assert!(ct.scales().is_empty());
    }

    #[test]
    fn mxfp4_tile_has_scales_per_row_group() {
        let g = WeightGenerator::new(12);
        let m = g.dense_matrix(16, 32);
        let c = Compressor::new(CompressionScheme::mxfp4());
        let ct = c.compress_tile(&m.tile(0, 0)).expect("compress");
        assert_eq!(ct.scales().len(), 16);
        assert_eq!(ct.payload_bytes(), 256);
        assert_eq!(ct.byte_size(), 272);
    }

    #[test]
    fn sparse_tile_is_pruned_to_target_density() {
        let g = WeightGenerator::new(13);
        let m = g.dense_matrix(16, 32);
        let scheme = CompressionScheme::bf8_sparse(0.2);
        let ct = Compressor::new(scheme)
            .compress_tile(&m.tile(0, 0))
            .expect("compress");
        let expected_nnz = (512.0 * 0.2) as usize;
        assert_eq!(ct.nonzero_count(), expected_nnz);
        assert_eq!(ct.bitmask().expect("sparse").popcount(), expected_nnz);
        assert_eq!(ct.payload_bytes(), expected_nnz);
        assert_eq!(ct.byte_size(), expected_nnz + 64);
    }

    #[test]
    fn without_pruning_keeps_existing_zero_pattern() {
        let g = WeightGenerator::new(14);
        let m = g.sparse_matrix(16, 32, 0.1);
        let actual_nnz = m.tile(0, 0).nonzero_count();
        let scheme = CompressionScheme::bf8_sparse(0.5);
        let ct = Compressor::new(scheme)
            .without_pruning()
            .compress_tile(&m.tile(0, 0))
            .expect("compress");
        assert_eq!(ct.nonzero_count(), actual_nnz);
    }

    #[test]
    fn pruning_keeps_largest_magnitudes() {
        let mut values = vec![0.0f32; TILE_ELEMS];
        // Plant 4 large values and many small ones.
        for (i, v) in values.iter_mut().enumerate() {
            *v = 0.001 + (i as f32) * 1e-6;
        }
        values[10] = 5.0;
        values[100] = -6.0;
        values[200] = 4.0;
        values[300] = -7.0;
        let tile = DenseTile::from_f32(&values);
        // Keep only ~1% = 5 values.
        let scheme = CompressionScheme::bf8_sparse(0.01);
        let ct = Compressor::new(scheme)
            .compress_tile(&tile)
            .expect("compress");
        let mask = ct.bitmask().expect("sparse");
        assert!(mask.get(10) && mask.get(100) && mask.get(200) && mask.get(300));
        assert_eq!(ct.nonzero_count(), 5);
    }

    #[test]
    fn matrix_compression_covers_all_tiles() {
        let g = WeightGenerator::new(15);
        let m = g.dense_matrix(48, 96);
        let cm = compress(&m, CompressionScheme::bf8_dense()).expect("compress");
        assert_eq!(cm.tiles().len(), 3 * 3);
        assert_eq!(cm.total_bytes(), 9 * 512);
        assert!((cm.compression_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bf16_sparse_stores_raw_bf16_bits() {
        let mut values = vec![0.0f32; TILE_ELEMS];
        values[0] = 1.0;
        values[511] = -2.0;
        let tile = DenseTile::from_f32(&values);
        let scheme = CompressionScheme::bf16_sparse(0.05);
        let ct = Compressor::new(scheme)
            .compress_tile(&tile)
            .expect("compress");
        let codes = ct.unpack_nonzeros();
        assert_eq!(codes.len(), 2);
        assert_eq!(Bf16::from_bits(codes[0]).to_f32(), 1.0);
        assert_eq!(Bf16::from_bits(codes[1]).to_f32(), -2.0);
    }

    #[test]
    fn measured_matrix_density_matches_scheme() {
        let g = WeightGenerator::new(16);
        let m = g.dense_matrix(64, 64);
        let scheme = CompressionScheme::bf8_sparse(0.3);
        let cm = compress(&m, scheme).expect("compress");
        assert!(
            (cm.density() - 0.3).abs() < 0.01,
            "density {}",
            cm.density()
        );
    }
}
