//! Criterion benchmark: the simulated compressed GeMM (software and DECA
//! engines) — the hot path behind Figures 12–17.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deca_compress::CompressionScheme;
use deca_kernels::{CompressedGemmExecutor, Engine};
use deca_roofsurface::MachineConfig;

fn bench_gemm_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_simulation");
    let executor =
        CompressedGemmExecutor::new(MachineConfig::spr_hbm()).with_steady_state_tiles(2000);
    for (name, engine) in [
        ("software", Engine::software()),
        ("deca", Engine::deca_default()),
    ] {
        for scheme in [
            CompressionScheme::bf8_sparse(0.2),
            CompressionScheme::mxfp4(),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, scheme.label()),
                &scheme,
                |b, scheme| {
                    b.iter(|| executor.run(std::hint::black_box(scheme), engine, 1));
                },
            );
        }
    }
    group.finish();
}

fn bench_integration_ladder(c: &mut Criterion) {
    use deca::{DecaConfig, IntegrationConfig};
    let executor =
        CompressedGemmExecutor::new(MachineConfig::spr_hbm()).with_steady_state_tiles(2000);
    let scheme = CompressionScheme::bf8_sparse(0.2);
    c.bench_function("fig17_ladder_one_density", |b| {
        b.iter(|| {
            IntegrationConfig::ablation_ladder()
                .into_iter()
                .map(|(_, integration)| {
                    executor
                        .run(
                            &scheme,
                            Engine::deca(DecaConfig::baseline(), integration),
                            4,
                        )
                        .tflops
                })
                .sum::<f64>()
        });
    });
}

criterion_group!(benches, bench_gemm_simulation, bench_integration_ladder);
criterion_main!(benches);
