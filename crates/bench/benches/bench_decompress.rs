//! Criterion benchmark: functional tile decompression throughput of the
//! reference decompressor, per compression scheme, plus the pluggable
//! streaming engines head to head.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use deca_compress::{
    generator::WeightGenerator, CompressionScheme, Compressor, DecompressScratch, Decompressor,
    DenseTile, EngineKind, WeightMatrix, TILE_BYTES_BF16,
};

fn bench_decompress(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_decompression");
    let generator = WeightGenerator::new(42);
    let tile = generator.dense_matrix(16, 32).tile(0, 0);
    let decompressor = Decompressor::new();
    for scheme in [
        CompressionScheme::bf16_sparse(0.5),
        CompressionScheme::bf8_dense(),
        CompressionScheme::bf8_sparse(0.2),
        CompressionScheme::bf8_sparse(0.05),
        CompressionScheme::mxfp4(),
    ] {
        let compressed = Compressor::new(scheme)
            .compress_tile(&tile)
            .expect("compress");
        group.throughput(Throughput::Bytes(TILE_BYTES_BF16 as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &compressed,
            |b, compressed| {
                b.iter(|| {
                    decompressor
                        .decompress_tile(std::hint::black_box(compressed))
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_compression");
    let generator = WeightGenerator::new(43);
    let tile = generator.dense_matrix(16, 32).tile(0, 0);
    for scheme in [
        CompressionScheme::bf8_sparse(0.2),
        CompressionScheme::mxfp4(),
    ] {
        let compressor = Compressor::new(scheme);
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &tile,
            |b, tile| {
                b.iter(|| {
                    compressor
                        .compress_tile(std::hint::black_box(tile))
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_engines_tile(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_tile_decompression");
    let tile = WeightGenerator::new(44).dense_matrix(16, 32).tile(0, 0);
    let compressed = Compressor::new(CompressionScheme::bf8_sparse(0.5))
        .compress_tile(&tile)
        .expect("compress");
    for kind in EngineKind::all() {
        let engine = kind.build();
        let mut out = DenseTile::zero();
        let mut scratch = DecompressScratch::new();
        group.throughput(Throughput::Bytes(TILE_BYTES_BF16 as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &compressed,
            |b, compressed| {
                b.iter(|| {
                    engine
                        .decompress_tile_into(
                            std::hint::black_box(compressed),
                            &mut scratch,
                            &mut out,
                        )
                        .unwrap();
                });
            },
        );
    }
    group.finish();
}

fn bench_engines_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_matrix_decompression");
    let weights = WeightGenerator::new(45).dense_matrix(256, 512);
    let compressed = Compressor::new(CompressionScheme::bf8_sparse(0.5))
        .compress_matrix(&weights)
        .expect("compress");
    let dense_bytes = (weights.rows() * weights.cols() * 2) as u64;
    for kind in EngineKind::all() {
        let engine = kind.build();
        let mut out = WeightMatrix::zeros(weights.rows(), weights.cols());
        group.throughput(Throughput::Bytes(dense_bytes));
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &compressed,
            |b, compressed| {
                b.iter(|| {
                    engine
                        .decompress_matrix_into(std::hint::black_box(compressed), &mut out)
                        .unwrap();
                });
            },
        );
    }
    group.finish();
}

/// SIMD-focused group: the AVX2 path against its forced portable fallback
/// and the word-parallel incumbent, per scheme family, so a vector-path
/// regression is visible even when the auto-tuner would mask it.
fn bench_engine_simd(c: &mut Criterion) {
    use deca_compress::{DecompressEngine, SimdEngine, WordParallelEngine};

    let mut group = c.benchmark_group("engine_simd");
    let tile = WeightGenerator::new(46).dense_matrix(16, 32).tile(0, 0);
    let engines: [(&str, Box<dyn DecompressEngine>); 3] = [
        ("simd", Box::new(SimdEngine::new())),
        ("simd-portable", Box::new(SimdEngine::portable())),
        ("word-parallel", Box::new(WordParallelEngine::new())),
    ];
    for scheme in [
        CompressionScheme::bf8_dense(),
        CompressionScheme::bf8_sparse(0.5),
        CompressionScheme::mxfp4(),
    ] {
        let compressed = Compressor::new(scheme)
            .compress_tile(&tile)
            .expect("compress");
        for (label, engine) in &engines {
            let mut out = DenseTile::zero();
            let mut scratch = DecompressScratch::new();
            group.throughput(Throughput::Bytes(TILE_BYTES_BF16 as u64));
            group.bench_with_input(
                BenchmarkId::new(*label, scheme.label()),
                &compressed,
                |b, compressed| {
                    b.iter(|| {
                        engine
                            .decompress_tile_into(
                                std::hint::black_box(compressed),
                                &mut scratch,
                                &mut out,
                            )
                            .unwrap();
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decompress,
    bench_compress,
    bench_engines_tile,
    bench_engines_matrix,
    bench_engine_simd
);
criterion_main!(benches);
