//! Criterion benchmark: functional tile decompression throughput of the
//! reference decompressor, per compression scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use deca_compress::{
    generator::WeightGenerator, CompressionScheme, Compressor, Decompressor, TILE_BYTES_BF16,
};

fn bench_decompress(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_decompression");
    let generator = WeightGenerator::new(42);
    let tile = generator.dense_matrix(16, 32).tile(0, 0);
    let decompressor = Decompressor::new();
    for scheme in [
        CompressionScheme::bf16_sparse(0.5),
        CompressionScheme::bf8_dense(),
        CompressionScheme::bf8_sparse(0.2),
        CompressionScheme::bf8_sparse(0.05),
        CompressionScheme::mxfp4(),
    ] {
        let compressed = Compressor::new(scheme)
            .compress_tile(&tile)
            .expect("compress");
        group.throughput(Throughput::Bytes(TILE_BYTES_BF16 as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &compressed,
            |b, compressed| {
                b.iter(|| {
                    decompressor
                        .decompress_tile(std::hint::black_box(compressed))
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_compression");
    let generator = WeightGenerator::new(43);
    let tile = generator.dense_matrix(16, 32).tile(0, 0);
    for scheme in [
        CompressionScheme::bf8_sparse(0.2),
        CompressionScheme::mxfp4(),
    ] {
        let compressor = Compressor::new(scheme);
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &tile,
            |b, tile| {
                b.iter(|| {
                    compressor
                        .compress_tile(std::hint::black_box(tile))
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decompress, bench_compress);
criterion_main!(benches);
