//! Criterion benchmark: next-token latency estimation for the two LLMs —
//! the path behind Table 1 and Table 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deca_compress::CompressionScheme;
use deca_kernels::Engine;
use deca_llm::{InferenceEstimator, LlmModel};
use deca_roofsurface::MachineConfig;

fn bench_next_token(c: &mut Criterion) {
    let mut group = c.benchmark_group("next_token_estimation");
    let estimator = InferenceEstimator::new(MachineConfig::spr_hbm());
    for model in [LlmModel::llama2_70b(), LlmModel::opt_66b()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(model.name().to_string()),
            &model,
            |b, model| {
                b.iter(|| {
                    estimator.next_token(
                        std::hint::black_box(model),
                        &CompressionScheme::mxfp4(),
                        Engine::deca_default(),
                        1,
                        128,
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_functional_gemm(c: &mut Criterion) {
    use deca_compress::{generator::WeightGenerator, Compressor};
    use deca_kernels::functional;
    let weights = WeightGenerator::new(11).dense_matrix(128, 128);
    let activations = WeightGenerator::new(12)
        .with_std_dev(0.5)
        .dense_matrix(4, 128);
    let compressed = Compressor::new(CompressionScheme::bf8_sparse(0.3))
        .compress_matrix(&weights)
        .expect("compress");
    c.bench_function("functional_compressed_gemm_4x128x128", |b| {
        b.iter(|| {
            functional::gemm_compressed(
                std::hint::black_box(&activations),
                std::hint::black_box(&compressed),
            )
            .unwrap()
        });
    });
}

criterion_group!(benches, bench_next_token, bench_functional_gemm);
criterion_main!(benches);
