//! Criterion benchmark: the DECA PE functional pipeline (dequantization,
//! expansion, scaling) per tile, for representative schemes and sizings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deca::{DecaConfig, DecaPe};
use deca_compress::{generator::WeightGenerator, CompressionScheme, Compressor};

fn bench_pe_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("deca_pe_pipeline");
    let generator = WeightGenerator::new(7);
    let tile = generator.dense_matrix(16, 32).tile(0, 0);
    for scheme in [
        CompressionScheme::bf8_dense(),
        CompressionScheme::bf8_sparse(0.2),
        CompressionScheme::mxfp4(),
    ] {
        let compressed = Compressor::new(scheme)
            .compress_tile(&tile)
            .expect("compress");
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &compressed,
            |b, compressed| {
                let mut pe = DecaPe::new(DecaConfig::baseline());
                b.iter(|| pe.process_tile(std::hint::black_box(compressed)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_pe_sizings(c: &mut Criterion) {
    let mut group = c.benchmark_group("deca_pe_sizings");
    let generator = WeightGenerator::new(8);
    let tile = generator.dense_matrix(16, 32).tile(0, 0);
    let compressed = Compressor::new(CompressionScheme::bf8_sparse(0.2))
        .compress_tile(&tile)
        .expect("compress");
    for (name, config) in [
        ("W8_L4", DecaConfig::underprovisioned()),
        ("W32_L8", DecaConfig::baseline()),
        ("W64_L64", DecaConfig::overprovisioned()),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &compressed,
            |b, compressed| {
                let mut pe = DecaPe::new(config);
                b.iter(|| pe.process_tile(std::hint::black_box(compressed)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pe_pipeline, bench_pe_sizings);
criterion_main!(benches);
