//! Criterion benchmark: Roof-Surface model evaluation, surface sampling and
//! the analytic {W, L} design-space exploration.

use criterion::{criterion_group, criterion_main, Criterion};
use deca_compress::SchemeSet;
use deca_roofsurface::{
    DecaVopModel, DesignSpaceExploration, KernelSignature, MachineConfig, RoofSurface,
};

fn bench_surface_eval(c: &mut Criterion) {
    let machine = MachineConfig::spr_hbm();
    let surface = RoofSurface::for_cpu(&machine);
    let sig = KernelSignature::new("Q8_20%", 1.0 / 166.4, 1.0 / 144.0);
    c.bench_function("roofsurface_flops_eval", |b| {
        b.iter(|| surface.flops(std::hint::black_box(&sig), 4));
    });
}

fn bench_surface_grid(c: &mut Criterion) {
    let machine = MachineConfig::spr_hbm();
    let surface = RoofSurface::for_cpu(&machine);
    c.bench_function("roofsurface_sample_grid_64x64", |b| {
        b.iter(|| surface.sample_grid((0.001, 0.02), (0.001, 0.05), 64, 4));
    });
}

fn bench_bubble_model(c: &mut Criterion) {
    let schemes = SchemeSet::paper_evaluation();
    c.bench_function("deca_bubble_model_all_schemes", |b| {
        b.iter(|| {
            schemes
                .iter()
                .map(|s| DecaVopModel::BASELINE.aix_v(std::hint::black_box(s)))
                .sum::<f64>()
        });
    });
}

fn bench_dse(c: &mut Criterion) {
    let dse =
        DesignSpaceExploration::new(MachineConfig::spr_hbm(), SchemeSet::paper_evaluation(), 4);
    let grid = DesignSpaceExploration::default_grid();
    c.bench_function("dse_full_grid", |b| {
        b.iter(|| dse.recommend(std::hint::black_box(&grid)));
    });
}

criterion_group!(
    benches,
    bench_surface_eval,
    bench_surface_grid,
    bench_bubble_model,
    bench_dse
);
criterion_main!(benches);
