//! The baseline drift check: parse two benchmark artifacts, strip every
//! volatile (wall-clock) field recursively, and diff what remains.
//!
//! `BENCH_baseline.json` is committed so a PR's diff shows exactly which
//! modeled quantities moved — but the artifact also records wall-clock
//! detail (`wall_ms` per experiment, `wall_secs`/`sessions_per_wall_sec`
//! inside `bench_simspeed` rows), which is machine noise, not drift. CI
//! used to strip a hand-kept allowlist of such keys per experiment; that
//! broke every time an experiment nested new timing detail. [`strip_volatile`]
//! instead walks the whole tree and removes any object entry whose key
//! *names wall-clock time*:
//!
//! * contains `wall` (`wall_ms`, `wall_secs`, `sessions_per_wall_sec`), or
//! * ends with `_secs` (a duration measured, not modeled — modeled times
//!   use the `_s`/`_ms` suffixes), or
//! * is one of the legacy machine-dependent signature fields
//!   (`dense_gbps`, `speedup_vs_scalar` from `bench_engines`).
//!
//! [`diff`] then compares the stripped trees exactly (bit-for-bit on
//! numbers — everything left is deterministic by construction) and
//! reports every divergence with its JSON path, so a CI failure names the
//! drifted quantity instead of dumping two documents.
//!
//! [`parse`] reads the dialect [`Json::render`] emits (compact RFC 8259)
//! plus the standard escapes a hand-edited baseline might contain.

use crate::json::Json;

/// Whether an object key names a volatile (machine-dependent) quantity
/// that the drift check must ignore.
#[must_use]
pub fn is_volatile_key(key: &str) -> bool {
    key.contains("wall")
        || key.ends_with("_secs")
        || key == "dense_gbps"
        || key == "speedup_vs_scalar"
}

/// Recursively removes every volatile-keyed entry from `value` (the
/// replacement for the old per-experiment allowlist).
#[must_use]
pub fn strip_volatile(value: Json) -> Json {
    match value {
        Json::Obj(entries) => Json::Obj(
            entries
                .into_iter()
                .filter(|(key, _)| !is_volatile_key(key))
                .map(|(key, inner)| (key, strip_volatile(inner)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(strip_volatile).collect()),
        scalar => scalar,
    }
}

/// Selects the experiment records named `name` from a baseline document
/// (`{"experiments": [{"name": ..., ...}]}`), preserving document order.
/// Returns an empty vec when the document has no such experiment.
#[must_use]
pub fn select_experiment(doc: &Json, name: &str) -> Vec<Json> {
    let Json::Obj(entries) = doc else {
        return Vec::new();
    };
    let Some(Json::Arr(experiments)) = entries
        .iter()
        .find(|(key, _)| key == "experiments")
        .map(|(_, v)| v)
    else {
        return Vec::new();
    };
    experiments
        .iter()
        .filter(|record| {
            matches!(record, Json::Obj(fields)
                if fields.iter().any(|(k, v)| k == "name" && matches!(v, Json::Str(s) if s == name)))
        })
        .cloned()
        .collect()
}

/// Lists the experiment names a baseline document carries
/// (`{"experiments": [{"name": ..., ...}]}`), in document order, deduped.
/// Returns an empty vec for documents without an `experiments` array —
/// the caller can tell "no such experiment" from "not a baseline at all".
#[must_use]
pub fn experiment_names(doc: &Json) -> Vec<String> {
    let Json::Obj(entries) = doc else {
        return Vec::new();
    };
    let Some(Json::Arr(experiments)) = entries
        .iter()
        .find(|(key, _)| key == "experiments")
        .map(|(_, v)| v)
    else {
        return Vec::new();
    };
    let mut names = Vec::new();
    for record in experiments {
        let Json::Obj(fields) = record else { continue };
        let Some(Json::Str(name)) = fields.iter().find(|(k, _)| k == "name").map(|(_, v)| v) else {
            continue;
        };
        if !names.iter().any(|n| n == name) {
            names.push(name.clone());
        }
    }
    names
}

/// Collects every divergence between two values as `path: left != right`
/// lines. Equal values produce an empty vec. Numbers compare exactly
/// (`f64::to_bits`): everything surviving [`strip_volatile`] is
/// deterministic, so any difference at all is drift.
#[must_use]
pub fn diff(left: &Json, right: &Json) -> Vec<String> {
    let mut out = Vec::new();
    diff_at("$", left, right, &mut out);
    out
}

fn summarize(value: &Json) -> String {
    match value {
        Json::Arr(items) => format!("<array of {}>", items.len()),
        Json::Obj(entries) => format!("<object of {}>", entries.len()),
        scalar => scalar.render(),
    }
}

fn diff_at(path: &str, left: &Json, right: &Json, out: &mut Vec<String>) {
    match (left, right) {
        (Json::Num(a), Json::Num(b)) => {
            if a.to_bits() != b.to_bits() {
                out.push(format!("{path}: {a} != {b}"));
            }
        }
        (Json::Arr(a), Json::Arr(b)) => {
            if a.len() != b.len() {
                out.push(format!("{path}: array length {} != {}", a.len(), b.len()));
                return;
            }
            for (i, (ai, bi)) in a.iter().zip(b).enumerate() {
                diff_at(&format!("{path}[{i}]"), ai, bi, out);
            }
        }
        (Json::Obj(a), Json::Obj(b)) => {
            let a_keys: Vec<&str> = a.iter().map(|(k, _)| k.as_str()).collect();
            let b_keys: Vec<&str> = b.iter().map(|(k, _)| k.as_str()).collect();
            if a_keys != b_keys {
                out.push(format!("{path}: object keys {a_keys:?} != {b_keys:?}"));
                return;
            }
            for ((key, av), (_, bv)) in a.iter().zip(b) {
                diff_at(&format!("{path}.{key}"), av, bv, out);
            }
        }
        (a, b) if a == b => {}
        (a, b) => out.push(format!("{path}: {} != {}", summarize(a), summarize(b))),
    }
}

/// Parses a JSON document into a [`Json`] value.
///
/// # Errors
///
/// Returns a message naming the byte offset and problem on malformed
/// input (trailing garbage, bad escapes, unterminated literals, …).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", char::from(byte), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match byte {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&escape) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match escape {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        // Surrogate pairs don't occur in our artifacts;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return Err(format!(
                            "unknown escape '\\{}' at byte {}",
                            char::from(other),
                            *pos
                        ))
                    }
                }
            }
            _ => {
                // Re-decode the UTF-8 sequence starting at byte - 1.
                let start = *pos - 1;
                let mut end = *pos;
                while end < bytes.len() && (bytes[end] & 0b1100_0000) == 0b1000_0000 {
                    end += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..end]).map_err(|e| e.to_string())?;
                out.push_str(chunk);
                *pos = end;
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_render_dialect() {
        let value = Json::obj(vec![
            ("name", Json::str("bench \"quoted\"\nline")),
            ("pi", Json::Num(3.25)),
            ("neg", Json::Num(-1e-3)),
            ("flag", Json::Bool(false)),
            ("nothing", Json::Null),
            (
                "nested",
                Json::Arr(vec![Json::Num(1.0), Json::obj(vec![("k", Json::str("v"))])]),
            ),
        ]);
        let parsed = parse(&value.render()).expect("round trip");
        assert_eq!(parsed, value);
    }

    #[test]
    fn parse_accepts_standard_escapes_and_whitespace() {
        let parsed = parse(" { \"a\\u0041\\/\" : [ 1 , true , null ] } ").expect("parses");
        assert_eq!(
            parsed,
            Json::obj(vec![(
                "aA/",
                Json::Arr(vec![Json::Num(1.0), Json::Bool(true), Json::Null])
            )])
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn stripper_removes_wall_fields_recursively() {
        let doc = Json::obj(vec![
            ("wall_ms", Json::Num(12.0)),
            ("makespan_s", Json::Num(60.5)),
            (
                "rows",
                Json::Arr(vec![Json::obj(vec![
                    ("policy", Json::str("continuous")),
                    ("wall_secs", Json::Num(2.5)),
                    ("sessions_per_wall_sec", Json::Num(400_000.0)),
                    (
                        "inner",
                        Json::obj(vec![
                            ("search_wall_ms", Json::Num(3.0)),
                            ("elapsed_secs", Json::Num(1.0)),
                            ("p99_ttft_s", Json::Num(0.2)),
                        ]),
                    ),
                ])]),
            ),
            ("dense_gbps", Json::Num(100.0)),
            ("speedup_vs_scalar", Json::Num(9.0)),
        ]);
        let stripped = strip_volatile(doc);
        assert_eq!(
            stripped,
            Json::obj(vec![
                ("makespan_s", Json::Num(60.5)),
                (
                    "rows",
                    Json::Arr(vec![Json::obj(vec![
                        ("policy", Json::str("continuous")),
                        ("inner", Json::obj(vec![("p99_ttft_s", Json::Num(0.2))])),
                    ])])
                ),
            ])
        );
    }

    #[test]
    fn volatile_keys_spare_modeled_time_fields() {
        // Modeled, deterministic quantities survive...
        for key in [
            "makespan_s",
            "p99_ttft_s",
            "slo_tpot_ms",
            "sessions_per_sim_sec",
        ] {
            assert!(!is_volatile_key(key), "{key} must survive");
        }
        // ...measured wall-clock (and legacy machine-dependent) ones don't.
        for key in [
            "wall_ms",
            "wall_secs",
            "sessions_per_wall_sec",
            "search_wall_ms",
            "elapsed_secs",
            "dense_gbps",
            "speedup_vs_scalar",
        ] {
            assert!(is_volatile_key(key), "{key} must be stripped");
        }
    }

    #[test]
    fn diff_reports_paths_and_equal_trees_report_nothing() {
        let base = Json::obj(vec![
            ("a", Json::Num(1.0)),
            ("b", Json::Arr(vec![Json::str("x"), Json::Num(2.0)])),
        ]);
        assert!(diff(&base, &base.clone()).is_empty());
        let moved = Json::obj(vec![
            ("a", Json::Num(1.0)),
            ("b", Json::Arr(vec![Json::str("x"), Json::Num(2.5)])),
        ]);
        let lines = diff(&base, &moved);
        assert_eq!(lines, vec!["$.b[1]: 2 != 2.5".to_string()]);
        // Shape changes name the containing path, not a value.
        let reshaped = Json::obj(vec![("a", Json::Num(1.0))]);
        let lines = diff(&base, &reshaped);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("$: object keys"), "{}", lines[0]);
    }

    #[test]
    fn select_experiment_filters_by_name() {
        let doc = Json::obj(vec![
            ("schema_version", Json::Num(1.0)),
            (
                "experiments",
                Json::Arr(vec![
                    Json::obj(vec![("name", Json::str("alpha")), ("x", Json::Num(1.0))]),
                    Json::obj(vec![("name", Json::str("beta")), ("x", Json::Num(2.0))]),
                ]),
            ),
        ]);
        let beta = select_experiment(&doc, "beta");
        assert_eq!(beta.len(), 1);
        assert_eq!(
            beta[0],
            Json::obj(vec![("name", Json::str("beta")), ("x", Json::Num(2.0))])
        );
        assert!(select_experiment(&doc, "gamma").is_empty());
        assert!(select_experiment(&Json::Null, "alpha").is_empty());
    }

    #[test]
    fn experiment_names_lists_in_document_order_and_dedupes() {
        let doc = Json::obj(vec![(
            "experiments",
            Json::Arr(vec![
                Json::obj(vec![("name", Json::str("beta")), ("x", Json::Num(1.0))]),
                Json::obj(vec![("name", Json::str("alpha"))]),
                // A second record of an already-seen experiment (partial
                // artifacts repeat names) must not list twice.
                Json::obj(vec![("name", Json::str("beta"))]),
                // Records without a name are skipped, not an error.
                Json::obj(vec![("x", Json::Num(2.0))]),
            ]),
        )]);
        assert_eq!(experiment_names(&doc), vec!["beta", "alpha"]);
        assert!(experiment_names(&Json::Null).is_empty());
        assert!(experiment_names(&Json::obj(vec![("other", Json::Num(1.0))])).is_empty());
    }
}
