//! A deliberately tiny JSON document builder.
//!
//! The baseline artifact (`BENCH_baseline.json`) must be machine-readable,
//! but nothing in this workspace needs a full serialization framework (and
//! the build environment cannot fetch one — see `vendor/README.md`), so this
//! module provides a value tree with a correct-by-construction renderer:
//! string escaping per RFC 8259 and non-finite numbers mapped to `null`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (rendered via f64; NaN/infinite become `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for [`Json::Str`].
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an object entry list.
    #[must_use]
    pub fn obj(entries: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as compact JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("a").render(), "\"a\"");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("Q8_20%\"\\\n").render(), "\"Q8_20%\\\"\\\\\\n\"");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn renders_nested_structures() {
        let doc = Json::obj(vec![
            ("name", Json::str("baseline")),
            ("values", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
            ("nested", Json::obj(vec![("ok", Json::Bool(true))])),
        ]);
        assert_eq!(
            doc.render(),
            "{\"name\":\"baseline\",\"values\":[1,2],\"nested\":{\"ok\":true}}"
        );
    }
}
