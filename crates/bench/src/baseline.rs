//! The machine-readable benchmark baseline.
//!
//! `cargo run -p deca-bench --release --bin bench_baseline` regenerates
//! `BENCH_baseline.json`: per-experiment wall time plus the modeled numbers
//! (Roof-Surface TFLOPS, simulated pipeline cycles/speedups, LLM next-token
//! latencies) that future optimization PRs are measured against. Everything
//! except the wall times is deterministic, so a diff of the committed
//! artifact shows exactly which modeled quantities a change moved.

use std::time::Instant;

use deca_compress::{
    generator::WeightGenerator, CompressionScheme, Compressor, Decompressor, EngineKind, SchemeSet,
    WeightMatrix,
};
use deca_kernels::{avx_model::software_signature, CompressedGemmExecutor, Engine};
use deca_llm::{InferenceEstimator, LlmModel};
use deca_roofsurface::{MachineConfig, RoofSurface};

use crate::json::Json;

/// Schema version of the emitted document; bump on breaking layout changes.
pub const SCHEMA_VERSION: u32 = 1;

/// The command that regenerates the artifact.
pub const REGENERATE_COMMAND: &str = "cargo run -p deca-bench --release --bin bench_baseline";

fn num(n: f64) -> Json {
    Json::Num(n)
}

/// Roof-Surface model results: per machine and scheme, the software kernel's
/// signature, the model's attainable TFLOPS at N=1 and N=4, and the bounding
/// resource.
#[must_use]
pub fn roofsurface_results() -> Json {
    let mut machines = Vec::new();
    for machine in [MachineConfig::spr_ddr(), MachineConfig::spr_hbm()] {
        let surface = RoofSurface::for_cpu(&machine);
        let mut kernels = Vec::new();
        for scheme in SchemeSet::paper_evaluation() {
            let sig = software_signature(&scheme);
            kernels.push(Json::obj(vec![
                ("kernel", Json::str(scheme.label())),
                ("aix_m", num(sig.aix_m)),
                ("aix_v", num(sig.aix_v)),
                ("tflops_n1", num(surface.flops(&sig, 1) / 1e12)),
                ("tflops_n4", num(surface.flops(&sig, 4) / 1e12)),
                (
                    "bound",
                    Json::str(surface.bounding_factor(&sig).to_string()),
                ),
            ]));
        }
        machines.push(Json::obj(vec![
            ("machine", Json::str(machine.name.clone())),
            ("kernels", Json::Arr(kernels)),
        ]));
    }
    Json::Arr(machines)
}

/// Simulated compressed-GeMM pipeline results on SPR-HBM at N=1: software
/// versus DECA TFLOPS, modeled cycles per tile, and the DECA speedup.
#[must_use]
pub fn pipeline_results() -> Json {
    let executor = CompressedGemmExecutor::new(MachineConfig::spr_hbm());
    let baseline = executor.uncompressed_baseline(1);
    let mut kernels = Vec::new();
    for scheme in SchemeSet::paper_evaluation() {
        let software = executor.run(&scheme, Engine::software(), 1);
        let deca = executor.run(&scheme, Engine::deca_default(), 1);
        kernels.push(Json::obj(vec![
            ("kernel", Json::str(scheme.label())),
            ("software_tflops", num(software.tflops)),
            ("deca_tflops", num(deca.tflops)),
            (
                "software_cycles_per_tile",
                num(software.stats.cycles_per_tile()),
            ),
            ("deca_cycles_per_tile", num(deca.stats.cycles_per_tile())),
            (
                "software_speedup_vs_bf16",
                num(software.speedup_over(&baseline)),
            ),
            ("deca_speedup_vs_bf16", num(deca.speedup_over(&baseline))),
            (
                "deca_speedup_vs_software",
                num(deca.speedup_over(&software)),
            ),
        ]));
    }
    Json::obj(vec![
        ("machine", Json::str(executor.machine().name.clone())),
        ("batch", num(1.0)),
        ("uncompressed_bf16_tflops", num(baseline.tflops)),
        ("kernels", Json::Arr(kernels)),
    ])
}

/// LLM next-token latency results on SPR-HBM (128 input tokens, batch 1):
/// per model and scheme, software versus DECA milliseconds and the speedup.
#[must_use]
pub fn llm_latency_results() -> Json {
    let estimator = InferenceEstimator::new(MachineConfig::spr_hbm());
    let mut models = Vec::new();
    for model in [LlmModel::llama2_70b(), LlmModel::opt_66b()] {
        let mut schemes = Vec::new();
        for scheme in SchemeSet::llm_evaluation() {
            let software = estimator.next_token(&model, &scheme, Engine::software(), 1, 128);
            let mut entries = vec![
                ("scheme", Json::str(scheme.label())),
                ("software_ms", num(software.total_ms())),
            ];
            // DECA does not apply to the uncompressed model (no
            // decompression work to offload) — mirror Table 4's empty cell.
            if !scheme.is_uncompressed() {
                let deca = estimator.next_token(&model, &scheme, Engine::deca_default(), 1, 128);
                entries.push(("deca_ms", num(deca.total_ms())));
                entries.push(("deca_speedup", num(software.total_ms() / deca.total_ms())));
            }
            schemes.push(Json::obj(entries));
        }
        models.push(Json::obj(vec![
            ("model", Json::str(model.name().to_string())),
            ("batch", num(1.0)),
            ("context_tokens", num(128.0)),
            ("schemes", Json::Arr(schemes)),
        ]));
    }
    Json::Arr(models)
}

/// Rows of the synthetic matrix the engine benchmark streams (shrunk in
/// debug builds so plain `cargo test` stays fast; the committed baseline is
/// always regenerated in release mode).
const ENGINE_BENCH_ROWS: usize = if cfg!(debug_assertions) { 256 } else { 1024 };
/// Columns of the engine-benchmark matrix.
const ENGINE_BENCH_COLS: usize = if cfg!(debug_assertions) { 256 } else { 1024 };
/// Timed whole-matrix decompressions per engine.
const ENGINE_BENCH_ITERS: usize = if cfg!(debug_assertions) { 2 } else { 6 };

/// Matrix-decompression throughput of every pluggable engine, per scheme:
/// dense GB/s produced (decompressed BF16 bytes over wall time), the
/// speedup over the scalar reference, and a bit-exactness check against it.
///
/// The GB/s and speedup values are wall-clock measurements and therefore
/// machine-dependent; the CI drift check strips them (like `wall_ms`)
/// before comparing baselines. The `bit_exact` flags are deterministic.
#[must_use]
pub fn engine_results() -> Json {
    let generator = WeightGenerator::new(77);
    let weights = generator.dense_matrix(ENGINE_BENCH_ROWS, ENGINE_BENCH_COLS);
    let dense_bytes = (ENGINE_BENCH_ROWS * ENGINE_BENCH_COLS * 2) as f64;
    let mut scheme_entries = Vec::new();
    for scheme in [
        CompressionScheme::bf8_sparse(0.5),
        CompressionScheme::bf8_sparse(0.05),
        CompressionScheme::mxfp4(),
    ] {
        let compressed = Compressor::new(scheme)
            .compress_matrix(&weights)
            .expect("compress");
        let reference = Decompressor::new()
            .decompress_matrix(&compressed)
            .expect("reference");
        let mut engines = Vec::new();
        let mut scalar_gbps = 0.0f64;
        for kind in EngineKind::all() {
            let engine = kind.build();
            let mut out = WeightMatrix::zeros(ENGINE_BENCH_ROWS, ENGINE_BENCH_COLS);
            engine
                .decompress_matrix_into(&compressed, &mut out)
                .expect("warmup");
            let bit_exact = out == reference;
            let start = Instant::now();
            for _ in 0..ENGINE_BENCH_ITERS {
                engine
                    .decompress_matrix_into(&compressed, &mut out)
                    .expect("decompress");
            }
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            let gbps = dense_bytes * ENGINE_BENCH_ITERS as f64 / secs / 1e9;
            if kind == EngineKind::Scalar {
                scalar_gbps = gbps;
            }
            engines.push(Json::obj(vec![
                ("engine", Json::str(kind.label())),
                ("dense_gbps", num(gbps)),
                (
                    "speedup_vs_scalar",
                    num(if scalar_gbps > 0.0 {
                        gbps / scalar_gbps
                    } else {
                        1.0
                    }),
                ),
                ("bit_exact", Json::Bool(bit_exact)),
            ]));
        }
        scheme_entries.push(Json::obj(vec![
            ("scheme", Json::str(scheme.label())),
            ("compressed_bytes", num(compressed.total_bytes() as f64)),
            ("engines", Json::Arr(engines)),
        ]));
    }
    Json::obj(vec![
        (
            "matrix",
            Json::str(format!("{ENGINE_BENCH_ROWS}x{ENGINE_BENCH_COLS}")),
        ),
        ("dense_bytes", num(dense_bytes)),
        ("iters", num(ENGINE_BENCH_ITERS as f64)),
        ("schemes", Json::Arr(scheme_entries)),
    ])
}

/// Runs every baseline experiment, recording wall time per experiment, and
/// assembles the full document.
#[must_use]
pub fn collect() -> Json {
    type ExperimentFn = fn() -> Json;
    let experiments: Vec<(&str, ExperimentFn)> = vec![
        ("roofsurface", roofsurface_results),
        ("pipeline", pipeline_results),
        ("llm_latency", llm_latency_results),
        ("bench_engines", engine_results),
    ];
    let mut records = Vec::new();
    for (name, run) in experiments {
        let start = Instant::now();
        let results = run();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        records.push(Json::obj(vec![
            ("name", Json::str(name)),
            ("wall_ms", num(wall_ms)),
            ("results", results),
        ]));
    }
    Json::obj(vec![
        ("schema_version", num(f64::from(SCHEMA_VERSION))),
        ("command", Json::str(REGENERATE_COMMAND)),
        ("experiments", Json::Arr(records)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(obj: &'a Json, key: &str) -> &'a Json {
        match obj {
            Json::Obj(entries) => {
                &entries
                    .iter()
                    .find(|(k, _)| k == key)
                    .unwrap_or_else(|| panic!("missing key {key}"))
                    .1
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn document_has_all_experiments() {
        let doc = collect();
        let Json::Arr(experiments) = find(&doc, "experiments") else {
            panic!("experiments must be an array");
        };
        let names: Vec<String> = experiments
            .iter()
            .map(|e| match find(e, "name") {
                Json::Str(s) => s.clone(),
                other => panic!("name must be a string, got {other:?}"),
            })
            .collect();
        assert_eq!(
            names,
            ["roofsurface", "pipeline", "llm_latency", "bench_engines"]
        );
        for experiment in experiments {
            match find(experiment, "wall_ms") {
                Json::Num(ms) => assert!(*ms >= 0.0),
                other => panic!("wall_ms must be a number, got {other:?}"),
            }
        }
    }

    #[test]
    fn pipeline_results_report_deca_speedups() {
        let pipeline = pipeline_results();
        let Json::Arr(kernels) = find(&pipeline, "kernels") else {
            panic!("kernels must be an array");
        };
        assert!(!kernels.is_empty());
        for kernel in kernels {
            for key in [
                "software_tflops",
                "deca_tflops",
                "software_cycles_per_tile",
                "deca_cycles_per_tile",
                "deca_speedup_vs_software",
            ] {
                match find(kernel, key) {
                    Json::Num(v) => assert!(v.is_finite() && *v > 0.0, "{key} = {v}"),
                    other => panic!("{key} must be a number, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn engine_results_verify_bit_exactness() {
        let engines = engine_results();
        let Json::Arr(schemes) = find(&engines, "schemes") else {
            panic!("schemes must be an array");
        };
        assert_eq!(schemes.len(), 3);
        for scheme in schemes {
            let Json::Arr(entries) = find(scheme, "engines") else {
                panic!("engines must be an array");
            };
            assert_eq!(entries.len(), 3);
            for entry in entries {
                match find(entry, "bit_exact") {
                    Json::Bool(exact) => assert!(*exact, "engine must match the reference"),
                    other => panic!("bit_exact must be a bool, got {other:?}"),
                }
                match find(entry, "dense_gbps") {
                    Json::Num(v) => assert!(v.is_finite() && *v > 0.0),
                    other => panic!("dense_gbps must be a number, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn llm_results_cover_both_models_and_render() {
        let llm = llm_latency_results();
        let rendered = llm.render();
        assert!(rendered.contains("Llama2-70B"));
        assert!(rendered.contains("OPT-66B"));
        assert!(rendered.contains("deca_speedup"));
    }
}
