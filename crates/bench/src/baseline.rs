//! The machine-readable benchmark baseline.
//!
//! `cargo run -p deca-bench --release --bin bench_baseline` regenerates
//! `BENCH_baseline.json`: per-experiment wall time plus the modeled numbers
//! (Roof-Surface TFLOPS, simulated pipeline cycles/speedups, LLM next-token
//! latencies) that future optimization PRs are measured against. Everything
//! except the wall times is deterministic, so a diff of the committed
//! artifact shows exactly which modeled quantities a change moved.

use std::time::Instant;

use deca_compress::{
    generator::WeightGenerator, CompressionScheme, Compressor, Decompressor, EngineKind, SchemeSet,
    WeightMatrix,
};
use deca_kernels::{avx_model::software_signature, CompressedGemmExecutor, Engine};
use deca_llm::{
    footprint, InferenceEstimator, InterconnectModel, LlmModel, ShardSpec, ShardedEstimator,
};
use deca_roofsurface::{MachineConfig, RoofSurface};
use deca_serve::{
    best_pool_split, capacity_search, capacity_search_warm, disagg_capacity_search_with,
    fleet_capacity_search_with, hbm_kv_budget_tokens, qos_capacity_search_with,
    sharded_kv_budget_tokens, sharding_sweep, AdapterModel, AgentLoopSpec, CapacityResult,
    CapacitySpec, ClassOutcome, ColdSessionSpec, EstimatorCostModel, KvShipSpec, KvTierModel,
    LengthDistribution, MultiTenantSpec, QosClass, RagSpec, RequestTrace, SchedulerKind,
    ServingConfig, ServingReport, ServingSimulator, ShardingPlanResult, ShardingSearchSpec,
    SharedPrefixChatSpec, SloTarget, WorkloadSpec,
};

use crate::json::Json;

/// Schema version of the emitted document; bump on breaking layout changes.
pub const SCHEMA_VERSION: u32 = 1;

/// The command that regenerates the artifact.
pub const REGENERATE_COMMAND: &str = "cargo run -p deca-bench --release --bin bench_baseline";

fn num(n: f64) -> Json {
    Json::Num(n)
}

/// Roof-Surface model results: per machine and scheme, the software kernel's
/// signature, the model's attainable TFLOPS at N=1 and N=4, and the bounding
/// resource.
#[must_use]
pub fn roofsurface_results() -> Json {
    let mut machines = Vec::new();
    for machine in [MachineConfig::spr_ddr(), MachineConfig::spr_hbm()] {
        let surface = RoofSurface::for_cpu(&machine);
        let mut kernels = Vec::new();
        for scheme in SchemeSet::paper_evaluation() {
            let sig = software_signature(&scheme);
            kernels.push(Json::obj(vec![
                ("kernel", Json::str(scheme.label())),
                ("aix_m", num(sig.aix_m)),
                ("aix_v", num(sig.aix_v)),
                ("tflops_n1", num(surface.flops(&sig, 1) / 1e12)),
                ("tflops_n4", num(surface.flops(&sig, 4) / 1e12)),
                (
                    "bound",
                    Json::str(surface.bounding_factor(&sig).to_string()),
                ),
            ]));
        }
        machines.push(Json::obj(vec![
            ("machine", Json::str(machine.name.clone())),
            ("kernels", Json::Arr(kernels)),
        ]));
    }
    Json::Arr(machines)
}

/// Simulated compressed-GeMM pipeline results on SPR-HBM at N=1: software
/// versus DECA TFLOPS, modeled cycles per tile, and the DECA speedup.
#[must_use]
pub fn pipeline_results() -> Json {
    let executor = CompressedGemmExecutor::new(MachineConfig::spr_hbm());
    let baseline = executor.uncompressed_baseline(1);
    let mut kernels = Vec::new();
    for scheme in SchemeSet::paper_evaluation() {
        let software = executor.run(&scheme, Engine::software(), 1);
        let deca = executor.run(&scheme, Engine::deca_default(), 1);
        kernels.push(Json::obj(vec![
            ("kernel", Json::str(scheme.label())),
            ("software_tflops", num(software.tflops)),
            ("deca_tflops", num(deca.tflops)),
            (
                "software_cycles_per_tile",
                num(software.stats.cycles_per_tile()),
            ),
            ("deca_cycles_per_tile", num(deca.stats.cycles_per_tile())),
            (
                "software_speedup_vs_bf16",
                num(software.speedup_over(&baseline)),
            ),
            ("deca_speedup_vs_bf16", num(deca.speedup_over(&baseline))),
            (
                "deca_speedup_vs_software",
                num(deca.speedup_over(&software)),
            ),
        ]));
    }
    Json::obj(vec![
        ("machine", Json::str(executor.machine().name.clone())),
        ("batch", num(1.0)),
        ("uncompressed_bf16_tflops", num(baseline.tflops)),
        ("kernels", Json::Arr(kernels)),
    ])
}

/// LLM next-token latency results on SPR-HBM (128 input tokens, batch 1):
/// per model and scheme, software versus DECA milliseconds and the speedup.
#[must_use]
pub fn llm_latency_results() -> Json {
    let estimator = InferenceEstimator::new(MachineConfig::spr_hbm());
    let mut models = Vec::new();
    for model in [LlmModel::llama2_70b(), LlmModel::opt_66b()] {
        let mut schemes = Vec::new();
        for scheme in SchemeSet::llm_evaluation() {
            let software = estimator.next_token(&model, &scheme, Engine::software(), 1, 128);
            let mut entries = vec![
                ("scheme", Json::str(scheme.label())),
                ("software_ms", num(software.total_ms())),
            ];
            // DECA does not apply to the uncompressed model (no
            // decompression work to offload) — mirror Table 4's empty cell.
            if !scheme.is_uncompressed() {
                let deca = estimator.next_token(&model, &scheme, Engine::deca_default(), 1, 128);
                entries.push(("deca_ms", num(deca.total_ms())));
                entries.push(("deca_speedup", num(software.total_ms() / deca.total_ms())));
            }
            schemes.push(Json::obj(entries));
        }
        models.push(Json::obj(vec![
            ("model", Json::str(model.name().to_string())),
            ("batch", num(1.0)),
            ("context_tokens", num(128.0)),
            ("schemes", Json::Arr(schemes)),
        ]));
    }
    Json::Arr(models)
}

/// Rows of the synthetic matrix the engine benchmark streams (shrunk in
/// debug builds so plain `cargo test` stays fast; the committed baseline is
/// always regenerated in release mode).
const ENGINE_BENCH_ROWS: usize = if cfg!(debug_assertions) { 256 } else { 1024 };
/// Columns of the engine-benchmark matrix.
const ENGINE_BENCH_COLS: usize = if cfg!(debug_assertions) { 256 } else { 1024 };
/// Timed whole-matrix decompressions per engine per sample.
const ENGINE_BENCH_ITERS: usize = if cfg!(debug_assertions) { 2 } else { 6 };
/// Timing samples per engine; throughput is the fastest sample. The
/// samples are interleaved round-robin across the engines so a noisy
/// neighbor on a shared runner degrades every engine's worst samples
/// alike instead of biasing whichever engine it overlapped.
const ENGINE_BENCH_SAMPLES: usize = if cfg!(debug_assertions) { 1 } else { 5 };

/// Matrix-decompression throughput of every pluggable engine, per scheme:
/// dense GB/s produced (decompressed BF16 bytes over wall time), the
/// speedup over the scalar reference, and a bit-exactness check against it.
///
/// The GB/s and speedup values are wall-clock measurements and therefore
/// machine-dependent; the CI drift check strips them (like `wall_ms`)
/// before comparing baselines. The `bit_exact` flags are deterministic.
#[must_use]
pub fn engine_results() -> Json {
    let generator = WeightGenerator::new(77);
    let weights = generator.dense_matrix(ENGINE_BENCH_ROWS, ENGINE_BENCH_COLS);
    let dense_bytes = (ENGINE_BENCH_ROWS * ENGINE_BENCH_COLS * 2) as f64;
    let mut scheme_entries = Vec::new();
    for scheme in [
        CompressionScheme::bf8_sparse(0.5),
        CompressionScheme::bf8_sparse(0.05),
        CompressionScheme::mxfp4(),
    ] {
        let compressed = Compressor::new(scheme)
            .compress_matrix(&weights)
            .expect("compress");
        let reference = Decompressor::new()
            .decompress_matrix(&compressed)
            .expect("reference");
        let kinds = EngineKind::all();
        let mut built = Vec::new();
        for kind in kinds {
            let engine = kind.build();
            let mut out = WeightMatrix::zeros(ENGINE_BENCH_ROWS, ENGINE_BENCH_COLS);
            engine
                .decompress_matrix_into(&compressed, &mut out)
                .expect("warmup");
            let bit_exact = out == reference;
            built.push((engine, out, bit_exact, f64::INFINITY));
        }
        for _ in 0..ENGINE_BENCH_SAMPLES {
            for (engine, out, _, best_secs) in &mut built {
                let start = Instant::now();
                for _ in 0..ENGINE_BENCH_ITERS {
                    engine
                        .decompress_matrix_into(&compressed, out)
                        .expect("decompress");
                }
                *best_secs = best_secs.min(start.elapsed().as_secs_f64().max(1e-9));
            }
        }
        let mut engines = Vec::new();
        let mut scalar_gbps = 0.0f64;
        for (kind, (_, _, bit_exact, best_secs)) in kinds.into_iter().zip(built) {
            let gbps = dense_bytes * ENGINE_BENCH_ITERS as f64 / best_secs / 1e9;
            if kind == EngineKind::Scalar {
                scalar_gbps = gbps;
            }
            engines.push(Json::obj(vec![
                ("engine", Json::str(kind.label())),
                ("dense_gbps", num(gbps)),
                (
                    "speedup_vs_scalar",
                    num(if scalar_gbps > 0.0 {
                        gbps / scalar_gbps
                    } else {
                        1.0
                    }),
                ),
                ("bit_exact", Json::Bool(bit_exact)),
            ]));
        }
        scheme_entries.push(Json::obj(vec![
            ("scheme", Json::str(scheme.label())),
            ("compressed_bytes", num(compressed.total_bytes() as f64)),
            ("engines", Json::Arr(engines)),
        ]));
    }
    Json::obj(vec![
        (
            "matrix",
            Json::str(format!("{ENGINE_BENCH_ROWS}x{ENGINE_BENCH_COLS}")),
        ),
        ("dense_bytes", num(dense_bytes)),
        ("iters", num(ENGINE_BENCH_ITERS as f64)),
        ("schemes", Json::Arr(scheme_entries)),
    ])
}

/// Requests per probed rate of the serving capacity search (shrunk in
/// debug builds so plain `cargo test` stays fast; the committed baseline is
/// regenerated in release mode).
const SERVING_SEARCH_REQUESTS: usize = if cfg!(debug_assertions) { 32 } else { 128 };
/// Bisection refinements of the capacity search.
const SERVING_SEARCH_ITERATIONS: usize = if cfg!(debug_assertions) { 3 } else { 6 };
/// Requests on the bursty continuous-vs-static trace.
const SERVING_BURSTY_REQUESTS: usize = if cfg!(debug_assertions) { 48 } else { 160 };
/// Decode batch limit of the simulated replica.
const SERVING_MAX_BATCH: usize = 16;

/// The `bench_serving` headline sentence for the Q8_5% row.
fn serving_headline(
    slo: &SloTarget,
    model: &LlmModel,
    scheme: &CompressionScheme,
    sw: &CapacityResult,
    deca: &CapacityResult,
) -> String {
    if sw.max_rate_rps > 0.0 {
        format!(
            "at p99 TPOT <= {:.0} ms (TTFT <= {:.0} s), DECA sustains {:.2}x the requests/sec \
             of software decompression on {} {} ({:.2} vs {:.2} req/s per socket)",
            slo.tpot_s * 1e3,
            slo.ttft_s,
            deca.max_rate_rps / sw.max_rate_rps,
            model.name(),
            scheme.label(),
            deca.max_rate_rps,
            sw.max_rate_rps
        )
    } else {
        format!(
            "at p99 TPOT <= {:.0} ms (TTFT <= {:.0} s), DECA sustains {:.2} req/s per socket \
             on {} {} — an SLO software decompression cannot meet at any rate",
            slo.tpot_s * 1e3,
            slo.ttft_s,
            deca.max_rate_rps,
            model.name(),
            scheme.label()
        )
    }
}

/// Continuous vs static batching on a bursty trace (DECA, Q8_5%): one row
/// per scheduler plus the `[continuous, static]` goodputs.
fn bursty_scheduler_rows(
    machine: &MachineConfig,
    model: &LlmModel,
    slo: &SloTarget,
) -> (Vec<Json>, Vec<f64>) {
    let scheme = CompressionScheme::bf8_sparse(0.05);
    let budget = hbm_kv_budget_tokens(model, &scheme).expect("Q8_5% fits");
    let bursty = WorkloadSpec::bursty_chat(0.6, SERVING_BURSTY_REQUESTS, 43).generate();
    let mut scheduler_rows = Vec::new();
    let mut goodputs = Vec::new();
    // One memoized cost model across both scheduler runs: its answers are
    // pure functions of (batch, context), independent of the schedule.
    let mut cost = EstimatorCostModel::new(
        machine.clone(),
        model.clone(),
        scheme,
        Engine::deca_default(),
    );
    for kind in [
        SchedulerKind::ContinuousBatching,
        SchedulerKind::StaticBatching,
    ] {
        let config = ServingConfig::continuous(SERVING_MAX_BATCH, budget).with_scheduler(kind);
        let mut simulator = ServingSimulator::new(cost, config);
        let report = simulator.run(&bursty);
        cost = simulator.into_cost_model();
        let metrics = report.metrics();
        let goodput = report.goodput_rps(slo);
        goodputs.push(goodput);
        scheduler_rows.push(Json::obj(vec![
            ("scheduler", Json::str(kind.to_string())),
            ("goodput_rps", num(goodput)),
            ("p99_ttft_s", num(metrics.ttft.p99_s)),
            ("p99_e2e_s", num(metrics.e2e.p99_s)),
            ("peak_queue_depth", num(report.peak_queue_depth as f64)),
            (
                "peak_kv_reserved_tokens",
                num(report.peak_kv_reserved_tokens as f64),
            ),
            ("completed", num(report.completed() as f64)),
            ("rejected", num(report.rejected as f64)),
        ]));
    }
    (scheduler_rows, goodputs)
}

/// The serving-layer experiment (`deca-serve`): for each Table 4 compressed
/// scheme, the maximum requests/sec one SPR-HBM socket sustains at the
/// interactive p99 SLO with continuous batching — software decompression
/// versus DECA — plus a continuous-vs-static goodput comparison on a bursty
/// trace. Everything here is modeled/deterministic (the simulation has no
/// wall-clock inputs); only the surrounding `wall_ms` is volatile.
#[must_use]
pub fn serving_results() -> Json {
    let machine = MachineConfig::spr_hbm();
    let model = LlmModel::llama2_70b();
    let slo = SloTarget::interactive();
    let spec = CapacitySpec {
        slo,
        requests: SERVING_SEARCH_REQUESTS,
        seed: 7,
        min_rate: 0.25,
        max_rate: 64.0,
        iterations: SERVING_SEARCH_ITERATIONS,
    };

    let mut capacity_rows = Vec::new();
    let mut headline = String::new();
    for scheme in [
        CompressionScheme::mxfp4(),
        CompressionScheme::bf8_sparse(0.2),
        CompressionScheme::bf8_sparse(0.05),
    ] {
        let budget = hbm_kv_budget_tokens(&model, &scheme)
            .expect("every compressed Table 4 scheme fits in HBM");
        let config = ServingConfig::continuous(SERVING_MAX_BATCH, budget);
        let sw = capacity_search(
            &machine,
            &model,
            &scheme,
            Engine::software(),
            &config,
            &spec,
        );
        let deca = capacity_search(
            &machine,
            &model,
            &scheme,
            Engine::deca_default(),
            &config,
            &spec,
        );
        if scheme == CompressionScheme::bf8_sparse(0.05) {
            headline = serving_headline(&slo, &model, &scheme, &sw, &deca);
        }
        let mut row = vec![
            ("scheme", Json::str(scheme.label())),
            ("kv_budget_tokens", num(budget as f64)),
            ("software_rps", num(sw.max_rate_rps)),
            ("software_p99_tpot_ms", num(sw.p99_tpot_s * 1e3)),
            ("deca_rps", num(deca.max_rate_rps)),
            ("deca_p99_tpot_ms", num(deca.p99_tpot_s * 1e3)),
        ];
        // Software may be unable to meet the SLO at any rate (e.g. Q4's
        // 116 ms decode step leaves no interference headroom under 150 ms);
        // mirror Table 4's empty cell instead of a divide-by-zero ratio.
        if sw.max_rate_rps > 0.0 {
            row.push(("deca_vs_software", num(deca.max_rate_rps / sw.max_rate_rps)));
        }
        capacity_rows.push(Json::obj(row));
    }

    let (scheduler_rows, goodputs) = bursty_scheduler_rows(&machine, &model, &slo);

    Json::obj(vec![
        ("machine", Json::str(machine.name.clone())),
        ("model", Json::str(model.name().to_string())),
        ("max_batch", num(SERVING_MAX_BATCH as f64)),
        ("slo_ttft_s", num(slo.ttft_s)),
        ("slo_tpot_ms", num(slo.tpot_s * 1e3)),
        ("search_requests", num(SERVING_SEARCH_REQUESTS as f64)),
        ("capacity", Json::Arr(capacity_rows)),
        ("headline", Json::str(headline)),
        (
            "continuous_vs_static_goodput",
            num(if goodputs[1] > 0.0 {
                goodputs[0] / goodputs[1]
            } else {
                0.0
            }),
        ),
        ("bursty_schedulers", Json::Arr(scheduler_rows)),
    ])
}

/// Requests per simulated sharding-plan probe (shrunk in debug builds so
/// plain `cargo test` stays fast; the committed baseline is regenerated in
/// release mode).
const SHARDING_REQUESTS: usize = if cfg!(debug_assertions) { 12 } else { 40 };
/// Decode batch limit of the sharded replica.
const SHARDING_MAX_BATCH: usize = 16;
/// The KV working set a production deployment must hold: 16 concurrent
/// sequences at 8 k context. This is what pushes schemes that technically
/// fit their *weights* on one socket (e.g. Q4) past the 64 GB line.
const SHARDING_WORKING_SET_TOKENS: usize = 16 * 8192;
/// Context length of the TP latency-curve probe (the working-set context).
const SHARDING_CURVE_CONTEXT: usize = 8192;

/// The tensor-parallel plans the sharding experiment evaluates, cheapest
/// first.
fn sharding_plans() -> Vec<ShardSpec> {
    vec![
        ShardSpec::single(),
        ShardSpec::tp(2),
        ShardSpec::tp(4),
        ShardSpec::tp(8),
    ]
}

/// The chat workload the sharding SLO probes serve.
fn sharding_workload() -> WorkloadSpec {
    WorkloadSpec {
        arrivals: deca_serve::ArrivalProcess::Poisson { rate_per_sec: 0.5 },
        prompt_lengths: LengthDistribution::Bimodal {
            short: 256,
            long: 2048,
            long_fraction: 0.1,
        },
        output_lengths: LengthDistribution::Uniform { min: 64, max: 192 },
        requests: SHARDING_REQUESTS,
        seed: 17,
    }
}

fn sharding_plan_row(result: &ShardingPlanResult) -> Json {
    let mut row = vec![
        ("plan", Json::str(result.spec.to_string())),
        ("sockets", num(result.spec.sockets() as f64)),
        (
            "kv_budget_tokens",
            result
                .kv_budget_tokens
                .map_or(Json::Null, |b| num(b as f64)),
        ),
        ("servable", Json::Bool(result.servable)),
        ("feasible", Json::Bool(result.feasible)),
    ];
    if result.servable {
        row.push(("p99_ttft_s", num(result.p99_ttft_s)));
        row.push(("p99_tpot_ms", num(result.p99_tpot_s * 1e3)));
        row.push(("goodput_rps", num(result.goodput_rps)));
    }
    Json::obj(row)
}

/// One scheme's sharding row: one-socket fit, TP latency curve, per-plan
/// SLO sweeps for software and (on compressed schemes) DECA, and — when
/// the scheme cannot hold the working set on one socket but DECA serves it
/// sharded — the headline sentence.
fn sharding_scheme_row(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
    interconnect: InterconnectModel,
    plans: &[ShardSpec],
    search: &ShardingSearchSpec,
) -> (Json, Option<String>) {
    // One-socket view: do the weights fit at all, and does the working set
    // fit on top of them?
    let fits_working_set =
        footprint::fits_in_hbm_with_kv(model, scheme, SHARDING_CURVE_CONTEXT, SHARDING_MAX_BATCH);
    let one_socket = Json::obj(vec![
        (
            "fits_weights",
            Json::Bool(footprint::fits_in_hbm(model, scheme)),
        ),
        (
            "kv_budget_tokens",
            footprint::max_kv_tokens(model, scheme).map_or(Json::Null, |b| num(b as f64)),
        ),
        ("fits_working_set", Json::Bool(fits_working_set)),
    ]);

    let deca_applies = !scheme.is_uncompressed();
    let curve = plans
        .iter()
        .map(|&spec| sharding_curve_point(machine, model, scheme, spec, interconnect, deca_applies))
        .collect();

    // Minimum sockets holding the working set and meeting the p99 SLO.
    // (`min_sockets_for_slo` is the same selection over the same sweep, so
    // the winner is picked from the already-simulated plans.)
    let sweep =
        |engine| sharding_sweep(machine, model, scheme, engine, interconnect, plans, search);
    let min = |results: &[ShardingPlanResult]| {
        results
            .iter()
            .filter(|r| r.feasible)
            .min_by_key(|r| r.spec.sockets())
            .copied()
    };
    let sw_plans = sweep(Engine::software());
    let mut row = vec![
        ("scheme", Json::str(scheme.label())),
        ("one_socket", one_socket),
        ("tp_curve", Json::Arr(curve)),
        (
            "software_plans",
            Json::Arr(sw_plans.iter().map(sharding_plan_row).collect()),
        ),
        (
            "software_min_sockets",
            min(&sw_plans).map_or(Json::Null, |r| num(r.spec.sockets() as f64)),
        ),
    ];
    let mut headline = None;
    if deca_applies {
        let deca_plans = sweep(Engine::deca_default());
        let deca_min = min(&deca_plans);
        // The headline sentence claims the weights fit on one socket, so
        // it only applies to schemes where that is actually true (Q4, not
        // dense Q8, whose weights alone overflow the 64 GB).
        let weights_fit_one_socket = footprint::fits_in_hbm(model, scheme);
        if let (true, false, Some(win)) = (weights_fit_one_socket, fits_working_set, &deca_min) {
            headline = Some(format!(
                "{} {} fits its weights on one socket but cannot hold the \
                 {SHARDING_WORKING_SET_TOKENS}-token KV working set there; with DECA it holds \
                 the working set and meets the interactive p99 SLO at {} ({} sockets, p99 TPOT \
                 {:.0} ms)",
                model.name(),
                scheme.label(),
                win.spec,
                win.spec.sockets(),
                win.p99_tpot_s * 1e3
            ));
        }
        row.push((
            "deca_plans",
            Json::Arr(deca_plans.iter().map(sharding_plan_row).collect()),
        ));
        row.push((
            "deca_min_sockets",
            deca_min.map_or(Json::Null, |r| num(r.spec.sockets() as f64)),
        ));
    }
    (Json::obj(row), headline)
}

/// One point of the TP latency curve: the decode step at the working-set
/// context for software and (when it applies) DECA.
fn sharding_curve_point(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
    spec: ShardSpec,
    interconnect: InterconnectModel,
    deca_applies: bool,
) -> Json {
    let estimator = ShardedEstimator::new(machine.clone(), spec, interconnect);
    let sw = estimator.next_token(
        model,
        scheme,
        Engine::software(),
        SHARDING_MAX_BATCH,
        SHARDING_CURVE_CONTEXT,
    );
    let mut point = vec![
        ("plan", Json::str(spec.to_string())),
        ("software_ms", num(sw.total_ms())),
    ];
    if deca_applies {
        let deca = estimator.next_token(
            model,
            scheme,
            Engine::deca_default(),
            SHARDING_MAX_BATCH,
            SHARDING_CURVE_CONTEXT,
        );
        point.push(("deca_ms", num(deca.total_ms())));
        point.push(("deca_comm_fraction", num(deca.comm_fraction())));
    }
    Json::obj(point)
}

/// The sharding experiment (`bench_sharding`): for Table 4 schemes that
/// stop fitting one socket — outright (BF16, dense Q8) or once the KV
/// working set grows (Q4) — the TP scaling curve of the decode latency and
/// the minimum socket count that holds the working set *and* meets the
/// interactive p99 SLO, software decompression versus DECA, over a
/// UPI-class interconnect. Fully deterministic (only `wall_ms` is
/// volatile).
#[must_use]
pub fn sharding_results() -> Json {
    let machine = MachineConfig::spr_hbm();
    let model = LlmModel::llama2_70b();
    let interconnect = InterconnectModel::spr_upi();
    let slo = SloTarget::interactive();
    let plans = sharding_plans();
    let search = ShardingSearchSpec {
        slo,
        workload: sharding_workload(),
        max_batch: SHARDING_MAX_BATCH,
        required_kv_tokens: SHARDING_WORKING_SET_TOKENS,
    };

    let mut scheme_rows = Vec::new();
    let mut headline = String::new();
    for scheme in [
        CompressionScheme::bf16_dense(),
        CompressionScheme::bf8_dense(),
        CompressionScheme::mxfp4(),
    ] {
        let (row, scheme_headline) =
            sharding_scheme_row(&machine, &model, &scheme, interconnect, &plans, &search);
        if scheme == CompressionScheme::mxfp4() {
            if let Some(line) = scheme_headline {
                headline = line;
            }
        }
        scheme_rows.push(row);
    }

    Json::obj(vec![
        ("machine", Json::str(machine.name.clone())),
        ("model", Json::str(model.name().to_string())),
        ("interconnect_gbps", num(interconnect.link_bandwidth_gbps)),
        ("interconnect_latency_us", num(interconnect.link_latency_us)),
        (
            "working_set_tokens",
            num(SHARDING_WORKING_SET_TOKENS as f64),
        ),
        ("max_batch", num(SHARDING_MAX_BATCH as f64)),
        ("slo_ttft_s", num(slo.ttft_s)),
        ("slo_tpot_ms", num(slo.tpot_s * 1e3)),
        ("probe_requests", num(SHARDING_REQUESTS as f64)),
        ("schemes", Json::Arr(scheme_rows)),
        ("headline", Json::str(headline)),
    ])
}

/// Sessions of the shared-prefix capacity trace (shrunk in debug builds so
/// plain `cargo test` stays fast; the committed baseline is regenerated in
/// release mode).
const PAGED_SESSIONS: usize = if cfg!(debug_assertions) { 10 } else { 24 };
/// Turns per conversation of the shared-prefix trace.
const PAGED_TURNS: usize = 3;
/// Tokens per KV block of the paged policies.
const PAGED_BLOCK_SIZE: usize = 32;
/// Bisection refinements of the paged capacity searches.
const PAGED_SEARCH_ITERATIONS: usize = if cfg!(debug_assertions) { 3 } else { 6 };
/// Decode batch limit of the paged experiment's replica.
const PAGED_MAX_BATCH: usize = 16;
/// Session rate of the fixed-load policy comparison (sessions/sec).
const PAGED_DETAIL_RATE: f64 = 0.25;
/// KV-token pool of the deliberately overloaded preemption scenario —
/// small enough that even with the 512-token system prompt shared, the
/// concurrent turn-1 wave cannot fit its private suffixes.
const PAGED_OVERLOAD_BUDGET_TOKENS: usize = 2_048;
/// Session rate of the overload scenario (far beyond its tiny pool).
const PAGED_OVERLOAD_RATE: f64 = 4.0;

/// The shared-prefix conversation workload of `bench_paged` (the rate is
/// substituted per capacity probe).
fn paged_workload() -> SharedPrefixChatSpec {
    SharedPrefixChatSpec {
        turns_per_session: PAGED_TURNS,
        ..SharedPrefixChatSpec::fleet(1.0, PAGED_SESSIONS, 29)
    }
}

/// The three admission policies `bench_paged` compares on one replica.
fn paged_policies(budget: usize) -> [(&'static str, ServingConfig); 3] {
    let reserve = ServingConfig::continuous(PAGED_MAX_BATCH, budget);
    let paged = ServingConfig::paged(PAGED_MAX_BATCH, budget, PAGED_BLOCK_SIZE);
    [
        ("reserve", reserve),
        ("paged", paged),
        ("paged+prefix", paged.with_prefix_sharing(true)),
    ]
}

/// One serving run of the shared-prefix trace under `config`, for the
/// fixed-load and overload rows.
fn paged_detail_run(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
    engine: Engine,
    config: &ServingConfig,
    rate: f64,
) -> ServingReport {
    let trace = paged_workload().with_rate(rate).generate();
    let cost = EstimatorCostModel::new(machine.clone(), model.clone(), *scheme, engine);
    ServingSimulator::new(cost, *config).run(&trace)
}

/// The JSON row of one fixed-load policy run, including the paged-KV
/// counters when the policy has them.
fn paged_detail_row(label: &str, slo: &SloTarget, report: &ServingReport) -> Json {
    let metrics = report.metrics();
    let mut row = vec![
        ("policy", Json::str(label)),
        ("completed", num(report.completed() as f64)),
        ("rejected", num(report.rejected as f64)),
        ("goodput_rps", num(report.goodput_rps(slo))),
        ("p99_ttft_s", num(metrics.ttft.p99_s)),
        ("p99_tpot_ms", num(metrics.tpot.p99_s * 1e3)),
        ("mean_kv_occupancy", num(report.mean_kv_occupancy)),
        (
            "peak_kv_occupied_tokens",
            num(report.peak_kv_occupied_tokens as f64),
        ),
    ];
    if let Some(paged) = &report.paged {
        row.push(("prefix_hit_rate", num(paged.prefix_hit_rate())));
        row.push(("preemptions", num(paged.preemptions as f64)));
        row.push(("mean_block_utilization", num(paged.mean_block_utilization)));
        row.push((
            "mean_internal_fragmentation",
            num(paged.mean_internal_fragmentation),
        ));
    }
    Json::obj(row)
}

/// The capacity matrix of `bench_paged` — shard plan × engine × policy —
/// plus the headline sentence for the (TP1, DECA) cell.
fn paged_capacity_matrix(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
    slo: &SloTarget,
) -> (Vec<Json>, String) {
    let spec = CapacitySpec {
        slo: *slo,
        requests: PAGED_SESSIONS * PAGED_TURNS,
        seed: 29,
        min_rate: 0.05,
        max_rate: 16.0,
        iterations: PAGED_SEARCH_ITERATIONS,
    };
    let workload = paged_workload();
    let mut shard_rows = Vec::new();
    let mut headline = String::new();
    for (shard_label, shard, interconnect) in [
        ("TP1", ShardSpec::single(), InterconnectModel::zero_cost()),
        ("TP2", ShardSpec::tp(2), InterconnectModel::spr_upi()),
    ] {
        let budget =
            sharded_kv_budget_tokens(model, scheme, &shard).expect("Q8_5% fits every probed plan");
        let mut engine_rows = Vec::new();
        for (engine_label, engine) in [
            ("software", Engine::software()),
            ("deca", Engine::deca_default()),
        ] {
            let mut policy_rows = Vec::new();
            let mut capacities = Vec::new();
            // One warm cost model across the three policy searches: its
            // latencies are pure functions of (batch, context), so the
            // memoized estimator queries are shared, not re-derived.
            let mut cost = EstimatorCostModel::sharded(
                machine.clone(),
                model.clone(),
                *scheme,
                engine,
                shard,
                interconnect,
            );
            for (policy_label, config) in paged_policies(budget) {
                let result = capacity_search_warm(&mut cost, &config, &spec, |rate| {
                    workload.with_rate(rate).generate()
                });
                capacities.push(result.max_rate_rps);
                policy_rows.push(Json::obj(vec![
                    ("policy", Json::str(policy_label)),
                    ("sessions_per_sec", num(result.max_rate_rps)),
                    ("p99_ttft_s", num(result.p99_ttft_s)),
                    ("p99_tpot_ms", num(result.p99_tpot_s * 1e3)),
                    ("goodput_rps", num(result.goodput_rps)),
                ]));
            }
            if shard_label == "TP1" && engine_label == "deca" {
                // Same zero guard as the per-engine ratio field below: a
                // reserve capacity of 0 must read as "unservable", not as
                // an astronomically inflated ratio.
                let verdict = if capacities[0] > 0.0 {
                    format!(
                        "serves {:.2}x the sessions/sec of reserve-up-front",
                        capacities[2] / capacities[0]
                    )
                } else {
                    "serves a load reserve-up-front cannot serve at all".to_string()
                };
                headline = format!(
                    "on a shared-prefix chat trace at the interactive p99 SLO, paged+prefix \
                     admission {verdict} on one DECA socket ({:.2} vs {:.2} sessions/s, {} \
                     Q8_5%)",
                    capacities[2],
                    capacities[0],
                    model.name(),
                );
            }
            let mut engine_row = vec![
                ("engine", Json::str(engine_label)),
                ("policies", Json::Arr(policy_rows)),
            ];
            // Reserve-up-front may fail the SLO at every probed rate (the
            // software engine cannot prefill whole conversations fast
            // enough); mirror Table 4's empty cell instead of a
            // divide-by-zero ratio.
            if capacities[0] > 0.0 {
                engine_row.push((
                    "paged_prefix_vs_reserve",
                    num(capacities[2] / capacities[0]),
                ));
            }
            engine_rows.push(Json::obj(engine_row));
        }
        shard_rows.push(Json::obj(vec![
            ("plan", Json::str(shard_label)),
            ("kv_budget_tokens", num(budget as f64)),
            ("total_blocks", num((budget / PAGED_BLOCK_SIZE) as f64)),
            ("engines", Json::Arr(engine_rows)),
        ]));
    }
    (shard_rows, headline)
}

/// The overload row of `bench_paged`: a deliberately tiny pool under a
/// high session rate forces allocation failures, so preemption-by-
/// recompute (and prefix-cache eviction) must fire — and the run must
/// still conserve the trace.
fn paged_overload_row(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
) -> Json {
    let config = ServingConfig::paged(
        PAGED_MAX_BATCH,
        PAGED_OVERLOAD_BUDGET_TOKENS,
        PAGED_BLOCK_SIZE,
    )
    .with_prefix_sharing(true);
    let overload = paged_detail_run(
        machine,
        model,
        scheme,
        Engine::deca_default(),
        &config,
        PAGED_OVERLOAD_RATE,
    );
    let paged = overload.paged.expect("paged run");
    Json::obj(vec![
        ("kv_budget_tokens", num(PAGED_OVERLOAD_BUDGET_TOKENS as f64)),
        ("sessions_per_sec", num(PAGED_OVERLOAD_RATE)),
        ("offered", num((PAGED_SESSIONS * PAGED_TURNS) as f64)),
        ("completed", num(overload.completed() as f64)),
        ("rejected", num(overload.rejected as f64)),
        ("preemptions", num(paged.preemptions as f64)),
        ("cache_evictions", num(paged.cache_evictions as f64)),
        ("prefix_hit_rate", num(paged.prefix_hit_rate())),
        (
            "peak_allocated_blocks",
            num(paged.peak_allocated_blocks as f64),
        ),
    ])
}

/// The paged-KV experiment (`bench_paged`): on a shared-prefix
/// conversation trace, the session rate one replica sustains at the
/// interactive p99 SLO under reserve-up-front vs paged vs paged+prefix
/// admission — software decompression and DECA, single-socket and TP2 —
/// plus a fixed-load utilization/hit-rate comparison and a deliberately
/// overloaded small-pool scenario that exercises preemption-by-recompute.
/// Fully deterministic (only the surrounding `wall_ms` is volatile).
#[must_use]
pub fn paged_results() -> Json {
    let machine = MachineConfig::spr_hbm();
    let model = LlmModel::llama2_70b();
    let scheme = CompressionScheme::bf8_sparse(0.05);
    let slo = SloTarget::interactive();
    let (shard_rows, headline) = paged_capacity_matrix(&machine, &model, &scheme, &slo);

    // Fixed-load comparison (DECA, single socket): utilization, prefix hit
    // rate, and tail latency of the three policies at the same rate.
    let budget = hbm_kv_budget_tokens(&model, &scheme).expect("Q8_5% fits");
    let detail_rows: Vec<Json> = paged_policies(budget)
        .iter()
        .map(|(label, config)| {
            let report = paged_detail_run(
                &machine,
                &model,
                &scheme,
                Engine::deca_default(),
                config,
                PAGED_DETAIL_RATE,
            );
            paged_detail_row(label, &slo, &report)
        })
        .collect();
    let overload_row = paged_overload_row(&machine, &model, &scheme);

    Json::obj(vec![
        ("machine", Json::str(machine.name.clone())),
        ("model", Json::str(model.name().to_string())),
        ("scheme", Json::str(scheme.label())),
        ("block_size", num(PAGED_BLOCK_SIZE as f64)),
        ("max_batch", num(PAGED_MAX_BATCH as f64)),
        ("slo_ttft_s", num(slo.ttft_s)),
        ("slo_tpot_ms", num(slo.tpot_s * 1e3)),
        ("sessions", num(PAGED_SESSIONS as f64)),
        ("turns_per_session", num(PAGED_TURNS as f64)),
        (
            "system_prompt_tokens",
            num(paged_workload().system_prompt_tokens as f64),
        ),
        ("capacity", Json::Arr(shard_rows)),
        ("headline", Json::str(headline)),
        ("detail_rate_sessions_per_sec", num(PAGED_DETAIL_RATE)),
        ("detail", Json::Arr(detail_rows)),
        ("overload", overload_row),
    ])
}

/// Sessions of the cold-return swap-vs-recompute trace (shrunk in debug
/// builds so plain `cargo test` stays fast; the committed baseline is
/// regenerated in release mode).
const DISAGG_COLD_SESSIONS: usize = if cfg!(debug_assertions) { 10 } else { 32 };
/// Bisection refinements of the disagg experiment's capacity searches.
const DISAGG_SEARCH_ITERATIONS: usize = if cfg!(debug_assertions) { 3 } else { 5 };
/// KV pool (tokens) of the swap scenario — deliberately tight so a
/// returning session finds its prefix demoted (tiered) or evicted
/// (recompute), and concurrent bursts force preemptions.
const DISAGG_SWAP_BUDGET_TOKENS: usize = 4_096;
/// Tokens per KV block of the disagg experiment's paged replicas.
const DISAGG_BLOCK_SIZE: usize = 32;
/// Decode batch limit of the disagg experiment's replicas.
const DISAGG_MAX_BATCH: usize = 16;
/// DDR tier capacity in blocks — roomy, because host DDR is cheap next
/// to the HBM pool it backs.
const DISAGG_DDR_BLOCKS: usize = 4_096;
/// Sockets split between the prefill and decode pools (and granted to the
/// colocated baseline fleet).
const DISAGG_SOCKETS: usize = 4;
/// Requests per probed rate of the pool-split capacity searches.
const DISAGG_DOC_REQUESTS: usize = if cfg!(debug_assertions) { 24 } else { 64 };
/// Fixed session rate of the swap mechanism detail row (sessions/sec).
const DISAGG_DETAIL_RATE: f64 = 0.2;
/// p99 TTFT bound of the swap half's cold-return SLO. Re-prefilling a
/// returning session's evicted context costs ~1.5 s regardless of load, so
/// preempt-by-recompute has a rate-independent TTFT floor above this bound;
/// tiered offload promotes the demoted prefix from DDR and answers in
/// ~0.8 s. A bound between the two is exactly the regime KV offload exists
/// for (the pools half keeps the plain interactive SLO).
const DISAGG_SWAP_TTFT_S: f64 = 1.2;
/// p99 TTFT bound of the pools half's long-document SLO. Prefilling one
/// 4k-token document alone takes ~9.5 s, so the interactive 4 s bound is
/// unservable by *any* deployment; a document workload gets a document
/// TTFT budget. TPOT keeps the interactive bound — streaming must stay
/// fluid once the first token is out, which is exactly what prefill
/// interference on a colocated fleet breaks.
const DISAGG_DOC_TTFT_S: f64 = 12.0;

/// The cold-return conversation workload of the swap-vs-recompute half of
/// `bench_disagg` (the rate is substituted per capacity probe).
fn disagg_cold_workload() -> ColdSessionSpec {
    ColdSessionSpec::fleet(1.0, DISAGG_COLD_SESSIONS, 31)
}

/// The long-document chat workload of the disaggregation half: a bimodal
/// prompt mix whose occasional 4k-token documents are exactly the prefill
/// interference that inflates a colocated fleet's p99 TPOT.
fn disagg_doc_workload(rate: f64) -> WorkloadSpec {
    WorkloadSpec {
        arrivals: deca_serve::ArrivalProcess::Poisson { rate_per_sec: rate },
        prompt_lengths: LengthDistribution::Bimodal {
            short: 256,
            long: 4096,
            long_fraction: 0.15,
        },
        output_lengths: LengthDistribution::Uniform { min: 64, max: 192 },
        requests: DISAGG_DOC_REQUESTS,
        seed: 37,
    }
}

/// The JSON fields every capacity-search outcome contributes to a row.
fn disagg_capacity_fields(prefix: &str, result: &CapacityResult) -> Vec<(String, Json)> {
    vec![
        (format!("{prefix}_rps"), num(result.max_rate_rps)),
        (format!("{prefix}_p99_ttft_s"), num(result.p99_ttft_s)),
        (
            format!("{prefix}_p99_tpot_ms"),
            num(result.p99_tpot_s * 1e3),
        ),
        (format!("{prefix}_goodput_rps"), num(result.goodput_rps)),
    ]
}

/// The swap-vs-recompute half of `bench_disagg`: on the cold-return trace
/// with a deliberately tight HBM pool, the session rate one replica
/// sustains at the cold-return p99 SLO ([`DISAGG_SWAP_TTFT_S`] TTFT, the
/// interactive TPOT) with preempt-by-recompute (no tiers) versus tiered KV
/// offload (swap-outs to DDR, cold prefixes demoted and promoted back) —
/// per engine — plus a fixed-rate detail row showing the tier counters
/// that explain the win.
fn disagg_swap_rows(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
    slo: &SloTarget,
) -> (Vec<Json>, Json, String) {
    let workload = disagg_cold_workload();
    let spec = CapacitySpec {
        slo: SloTarget {
            ttft_s: DISAGG_SWAP_TTFT_S,
            ..*slo
        },
        requests: workload.requests(),
        seed: 31,
        min_rate: 0.02,
        max_rate: 16.0,
        iterations: DISAGG_SEARCH_ITERATIONS,
    };
    let block_kv_bytes = footprint::kv_cache_bytes_per_sequence(model, DISAGG_BLOCK_SIZE) as f64;
    let recompute_config = ServingConfig::paged(
        DISAGG_MAX_BATCH,
        DISAGG_SWAP_BUDGET_TOKENS,
        DISAGG_BLOCK_SIZE,
    )
    .with_prefix_sharing(true);
    let tiered_config =
        recompute_config.with_tiers(KvTierModel::ddr_only(block_kv_bytes, DISAGG_DDR_BLOCKS));

    let mut engine_rows = Vec::new();
    let mut headline = String::new();
    for (engine_label, engine) in [
        ("software", Engine::software()),
        ("deca", Engine::deca_default()),
    ] {
        // One warm cost model across both searches: its latencies are pure
        // functions of (batch, context), independent of the tier config.
        let mut cost = EstimatorCostModel::new(machine.clone(), model.clone(), *scheme, engine);
        let recompute = capacity_search_warm(&mut cost, &recompute_config, &spec, |rate| {
            workload.with_rate(rate).generate()
        });
        let tiered = capacity_search_warm(&mut cost, &tiered_config, &spec, |rate| {
            workload.with_rate(rate).generate()
        });
        if engine_label == "deca" {
            // Same zero guard as the ratio field: a recompute capacity of 0
            // must read as "unservable", not as an inflated ratio.
            let verdict = if recompute.max_rate_rps > 0.0 {
                format!(
                    "{:.2}x the cold sessions/sec of preempt-by-recompute",
                    tiered.max_rate_rps / recompute.max_rate_rps
                )
            } else {
                "a cold-session load preempt-by-recompute cannot serve at all".to_string()
            };
            headline = format!(
                "with DDR KV offload, one DECA socket sustains {verdict} at the cold-return \
                 p99 SLO ({:.2} vs {:.2} sessions/s, {} {})",
                tiered.max_rate_rps,
                recompute.max_rate_rps,
                model.name(),
                scheme.label(),
            );
        }
        let mut row: Vec<(String, Json)> = vec![("engine".to_string(), Json::str(engine_label))];
        row.extend(disagg_capacity_fields("recompute", &recompute));
        row.extend(disagg_capacity_fields("tiered", &tiered));
        if recompute.max_rate_rps > 0.0 {
            row.push((
                "tiered_vs_recompute".to_string(),
                num(tiered.max_rate_rps / recompute.max_rate_rps),
            ));
        }
        engine_rows.push(Json::Obj(row));
    }

    // The mechanism, at one fixed rate on DECA: where the recompute run
    // burns prefill tokens, the tiered run swaps and promotes instead.
    let trace = workload.with_rate(DISAGG_DETAIL_RATE).generate();
    let run = |config: &ServingConfig| {
        let cost = EstimatorCostModel::new(
            machine.clone(),
            model.clone(),
            *scheme,
            Engine::deca_default(),
        );
        ServingSimulator::new(cost, *config).run(&trace)
    };
    let recompute_run = run(&recompute_config);
    let tiered_run = run(&tiered_config);
    let rstats = recompute_run.paged.expect("paged run");
    let tstats = tiered_run.paged.expect("paged run");
    let detail = Json::obj(vec![
        ("sessions_per_sec", num(DISAGG_DETAIL_RATE)),
        ("recompute_preemptions", num(rstats.preemptions as f64)),
        (
            "recompute_prefilled_tokens",
            num(rstats.prefix_uncached_tokens as f64),
        ),
        (
            "recompute_p99_ttft_s",
            num(recompute_run.metrics().ttft.p99_s),
        ),
        (
            "tiered_prefilled_tokens",
            num(tstats.prefix_uncached_tokens as f64),
        ),
        ("tiered_p99_ttft_s", num(tiered_run.metrics().ttft.p99_s)),
        ("swap_outs", num(tstats.swap_outs as f64)),
        ("swap_ins", num(tstats.swap_ins as f64)),
        ("tier_demotions", num(tstats.tier_demotions as f64)),
        ("tier_promotions", num(tstats.tier_promotions as f64)),
        ("peak_ddr_blocks", num(tstats.peak_ddr_blocks as f64)),
    ]);
    (engine_rows, detail, headline)
}

/// The disaggregation half of `bench_disagg`: on the long-document trace,
/// the arrival rate `DISAGG_SOCKETS` sockets sustain at the long-document
/// p99 SLO ([`DISAGG_DOC_TTFT_S`] TTFT, the interactive TPOT) as a
/// colocated fleet versus every prefill/decode pool split (prefill KV
/// shipped to the decode pool over UPI) — per engine.
fn disagg_pool_rows(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
    slo: &SloTarget,
) -> (Vec<Json>, String) {
    let budget = hbm_kv_budget_tokens(model, scheme).expect("Q8_5% fits");
    let config = ServingConfig::paged(DISAGG_MAX_BATCH, budget, DISAGG_BLOCK_SIZE);
    let kv_bytes_per_token = footprint::kv_cache_bytes_per_sequence(model, 1) as f64;
    let ship = KvShipSpec::over_interconnect(kv_bytes_per_token, &InterconnectModel::spr_upi());
    let spec = CapacitySpec {
        slo: SloTarget {
            ttft_s: DISAGG_DOC_TTFT_S,
            ..*slo
        },
        requests: DISAGG_DOC_REQUESTS,
        seed: 37,
        min_rate: 0.1,
        max_rate: 32.0,
        iterations: DISAGG_SEARCH_ITERATIONS,
    };

    let mut engine_rows = Vec::new();
    let mut headline = String::new();
    for (engine_label, engine) in [
        ("software", Engine::software()),
        ("deca", Engine::deca_default()),
    ] {
        // Warm one estimator on a single mid-rate replica run, then clone
        // it into every socket of every probe: the memoized (batch,
        // context) entries are shared instead of re-derived per replica.
        let proto = {
            let cost = EstimatorCostModel::new(machine.clone(), model.clone(), *scheme, engine);
            let mut sim = ServingSimulator::new(cost, config);
            sim.run(&disagg_doc_workload(1.0).generate());
            sim.into_cost_model()
        };
        let colocated = fleet_capacity_search_with(
            || proto.clone(),
            &config,
            DISAGG_SOCKETS,
            &spec,
            |rate| disagg_doc_workload(rate).generate(),
        );
        let splits = disagg_capacity_search_with(
            || proto.clone(),
            &config,
            DISAGG_SOCKETS,
            ship,
            &spec,
            |rate| disagg_doc_workload(rate).generate(),
        );
        let best = best_pool_split(&splits).expect("at least one split");
        if engine_label == "deca" {
            let verdict = if colocated.max_rate_rps > 0.0 {
                format!(
                    "{:.2}x the requests/sec of the best colocated fleet",
                    best.capacity.max_rate_rps / colocated.max_rate_rps
                )
            } else {
                "a long-document load the colocated fleet cannot serve at all".to_string()
            };
            headline = format!(
                "splitting {DISAGG_SOCKETS} DECA sockets into {} prefill + {} decode sustains \
                 {verdict} at the long-document p99 SLO ({:.2} vs {:.2} req/s, {} {})",
                best.prefill_replicas,
                best.decode_replicas,
                best.capacity.max_rate_rps,
                colocated.max_rate_rps,
                model.name(),
                scheme.label(),
            );
        }
        let split_rows: Vec<Json> = splits
            .iter()
            .map(|s| {
                let mut row: Vec<(String, Json)> = vec![
                    (
                        "prefill_replicas".to_string(),
                        num(s.prefill_replicas as f64),
                    ),
                    ("decode_replicas".to_string(), num(s.decode_replicas as f64)),
                ];
                row.extend(disagg_capacity_fields("split", &s.capacity));
                Json::Obj(row)
            })
            .collect();
        let mut row: Vec<(String, Json)> = vec![("engine".to_string(), Json::str(engine_label))];
        row.extend(disagg_capacity_fields("colocated", &colocated));
        row.push(("splits".to_string(), Json::Arr(split_rows)));
        row.push((
            "best_split".to_string(),
            Json::str(format!(
                "{}p+{}d",
                best.prefill_replicas, best.decode_replicas
            )),
        ));
        row.extend(disagg_capacity_fields("disagg", &best.capacity));
        if colocated.max_rate_rps > 0.0 {
            row.push((
                "disagg_vs_colocated".to_string(),
                num(best.capacity.max_rate_rps / colocated.max_rate_rps),
            ));
        }
        engine_rows.push(Json::Obj(row));
    }
    (engine_rows, headline)
}

/// The tiered-offload + disaggregation experiment (`bench_disagg`): the
/// swap-vs-recompute capacity comparison on the cold-return trace, and the
/// disaggregated-vs-colocated capacity comparison on the long-document
/// trace, both software and DECA. Fully deterministic (only the
/// surrounding `wall_ms` is volatile).
#[must_use]
pub fn disagg_results() -> Json {
    let machine = MachineConfig::spr_hbm();
    let model = LlmModel::llama2_70b();
    let scheme = CompressionScheme::bf8_sparse(0.05);
    let slo = SloTarget::interactive();

    let (swap_rows, swap_detail, swap_headline) = disagg_swap_rows(&machine, &model, &scheme, &slo);
    let (pool_rows, pool_headline) = disagg_pool_rows(&machine, &model, &scheme, &slo);

    Json::obj(vec![
        ("machine", Json::str(machine.name.clone())),
        ("model", Json::str(model.name().to_string())),
        ("scheme", Json::str(scheme.label())),
        ("block_size", num(DISAGG_BLOCK_SIZE as f64)),
        ("max_batch", num(DISAGG_MAX_BATCH as f64)),
        ("slo_tpot_ms", num(slo.tpot_s * 1e3)),
        (
            "swap",
            Json::obj(vec![
                ("sessions", num(DISAGG_COLD_SESSIONS as f64)),
                ("kv_budget_tokens", num(DISAGG_SWAP_BUDGET_TOKENS as f64)),
                ("ddr_blocks", num(DISAGG_DDR_BLOCKS as f64)),
                ("slo_ttft_s", num(DISAGG_SWAP_TTFT_S)),
                ("slo_tpot_ms", num(slo.tpot_s * 1e3)),
                ("engines", Json::Arr(swap_rows)),
                ("detail", swap_detail),
                ("headline", Json::str(swap_headline)),
            ]),
        ),
        (
            "pools",
            Json::obj(vec![
                ("sockets", num(DISAGG_SOCKETS as f64)),
                ("requests", num(DISAGG_DOC_REQUESTS as f64)),
                ("slo_ttft_s", num(DISAGG_DOC_TTFT_S)),
                ("slo_tpot_ms", num(slo.tpot_s * 1e3)),
                ("engines", Json::Arr(pool_rows)),
                ("headline", Json::str(pool_headline)),
            ]),
        ),
    ])
}

/// Chat requests of the chunked-prefill experiment's mixed trace (shrunk
/// in debug builds so plain `cargo test` stays fast; the committed
/// baseline is regenerated in release mode).
const CHUNKED_CHAT_REQUESTS: usize = if cfg!(debug_assertions) { 24 } else { 96 };
/// Fixed chat arrival rate of the TPOT-isolation comparison (the document
/// lane rides at an eighth of it, per [`deca_serve::DocChatMixSpec`]).
const CHUNKED_CHAT_RATE: f64 = 0.25;
/// The prefill chunk budget of the headline chunked runs (tokens per
/// batch step).
const CHUNKED_BUDGET_TOKENS: usize = 512;
/// Tokens per KV block of the chunked experiment's paged replicas.
const CHUNKED_BLOCK_SIZE: usize = 32;
/// Decode batch limit of the chunked experiment's replicas.
const CHUNKED_MAX_BATCH: usize = 16;
/// Draft tokens per speculative burst of the acceptance-rate curves.
const CHUNKED_DRAFT_TOKENS: usize = 4;
/// Trace and acceptance-draw seed of the chunked experiment.
const CHUNKED_SEED: u64 = 41;

/// The mixed long-document + chat workload of `bench_chunked`: the fleet
/// document lane with short (autocomplete-style) chat turns, so a turn's
/// decode window fits inside a document backlog and prefill stalls land
/// directly in the turn's TPOT instead of amortizing away.
fn chunked_mix() -> deca_serve::DocChatMixSpec {
    deca_serve::DocChatMixSpec {
        chat_output_tokens: deca_serve::LengthDistribution::Uniform { min: 8, max: 32 },
        ..deca_serve::DocChatMixSpec::fleet(CHUNKED_CHAT_RATE, CHUNKED_CHAT_REQUESTS, CHUNKED_SEED)
    }
}

/// Splits a report's records into (chat, document) lanes and returns the
/// chat lane's p99 TPOT (ms) and the document lane's p99 TTFT (s).
fn chunked_lane_tails(
    mix: &deca_serve::DocChatMixSpec,
    trace: &deca_serve::RequestTrace,
    report: &ServingReport,
) -> (f64, f64) {
    let mut chat_tpot = Vec::new();
    let mut doc_ttft = Vec::new();
    for record in &report.records {
        if mix.is_document(&trace.requests()[record.id]) {
            doc_ttft.push(record.ttft_s());
        } else {
            chat_tpot.push(record.tpot_s());
        }
    }
    (
        deca_serve::percentile(&chat_tpot, 99.0) * 1e3,
        deca_serve::percentile(&doc_ttft, 99.0),
    )
}

/// The TPOT-isolation leg of `bench_chunked`: chunked vs unchunked on the
/// mixed long-document + chat trace, per engine. Returns the per-engine
/// rows and the DECA headline.
fn chunked_isolation_section(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: CompressionScheme,
    config: &ServingConfig,
    mix: &deca_serve::DocChatMixSpec,
    trace: &deca_serve::RequestTrace,
) -> (Vec<Json>, String) {
    let mut isolation_rows = Vec::new();
    let mut isolation_headline = String::new();
    for (engine_label, engine) in [
        ("software", Engine::software()),
        ("deca", Engine::deca_default()),
    ] {
        let mut cost = EstimatorCostModel::new(machine.clone(), model.clone(), scheme, engine);
        let mut run = |chunk_budget: Option<usize>| {
            let mut sim =
                ServingSimulator::new(cost.clone(), config.with_chunked_prefill(chunk_budget));
            let report = sim.run(trace);
            cost = sim.into_cost_model();
            report
        };
        let unchunked = run(None);
        let chunked = run(Some(CHUNKED_BUDGET_TOKENS));
        let (unchunked_chat_tpot, unchunked_doc_ttft) = chunked_lane_tails(mix, trace, &unchunked);
        let (chunked_chat_tpot, chunked_doc_ttft) = chunked_lane_tails(mix, trace, &chunked);
        if engine_label == "deca" {
            isolation_headline = format!(
                "a {CHUNKED_BUDGET_TOKENS}-token chunk budget cuts chat p99 TPOT from \
                 {unchunked_chat_tpot:.1} ms to {chunked_chat_tpot:.1} ms under co-resident \
                 long-document prefill on one DECA socket ({} {})",
                model.name(),
                scheme.label(),
            );
        }
        isolation_rows.push(Json::obj(vec![
            ("engine", Json::str(engine_label)),
            ("unchunked_chat_p99_tpot_ms", num(unchunked_chat_tpot)),
            ("chunked_chat_p99_tpot_ms", num(chunked_chat_tpot)),
            (
                "chunked_vs_unchunked_tpot",
                num(chunked_chat_tpot / unchunked_chat_tpot),
            ),
            ("unchunked_doc_p99_ttft_s", num(unchunked_doc_ttft)),
            ("chunked_doc_p99_ttft_s", num(chunked_doc_ttft)),
            ("chunk_steps", num(chunked.chunk_steps as f64)),
            (
                "chunked_prefill_tokens",
                num(chunked.chunked_prefill_tokens as f64),
            ),
        ]));
    }
    (isolation_rows, isolation_headline)
}

/// The speculation leg of `bench_chunked`: goodput vs acceptance rate with
/// a Llama-2-7B draft against the 70B target, per engine, on a
/// decode-heavy chat trace. Returns the per-engine rows and the DECA
/// headline.
fn chunked_speculation_section(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: CompressionScheme,
    slo: &SloTarget,
    budget: usize,
) -> (Vec<Json>, String) {
    let draft = LlmModel::llama2_7b();
    let chat_trace = WorkloadSpec::chat(2.0, CHUNKED_CHAT_REQUESTS, CHUNKED_SEED).generate();
    let chat_config = ServingConfig::paged(CHUNKED_MAX_BATCH, budget, CHUNKED_BLOCK_SIZE);
    let rates = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut speculation_rows = Vec::new();
    let mut speculation_headline = String::new();
    for (engine_label, engine) in [
        ("software", Engine::software()),
        ("deca", Engine::deca_default()),
    ] {
        let mut cost = EstimatorCostModel::new(machine.clone(), model.clone(), scheme, engine)
            .with_draft_model(deca_llm::DraftSpec::new(
                draft.clone(),
                CHUNKED_DRAFT_TOKENS,
            ));
        let curve = deca_serve::speculation_goodput_curve_with(
            &mut cost,
            &chat_config,
            slo,
            CHUNKED_DRAFT_TOKENS,
            CHUNKED_SEED,
            &rates,
            &chat_trace,
        );
        if engine_label == "deca" {
            let (first, last) = (&curve[0], &curve[curve.len() - 1]);
            speculation_headline = format!(
                "with a {} draft at acceptance 1.0, one DECA socket's chat p99 TPOT drops from \
                 {:.1} ms to {:.1} ms ({} target, k={CHUNKED_DRAFT_TOKENS})",
                draft.name(),
                first.p99_tpot_s * 1e3,
                last.p99_tpot_s * 1e3,
                model.name(),
            );
        }
        let points: Vec<Json> = curve
            .iter()
            .map(|point| {
                Json::obj(vec![
                    ("acceptance_rate", num(point.acceptance_rate)),
                    ("p99_ttft_s", num(point.p99_ttft_s)),
                    ("p99_tpot_ms", num(point.p99_tpot_s * 1e3)),
                    ("goodput_rps", num(point.goodput_rps)),
                    ("bursts", num(point.decode_steps as f64)),
                ])
            })
            .collect();
        speculation_rows.push(Json::obj(vec![
            ("engine", Json::str(engine_label)),
            ("points", Json::Arr(points)),
        ]));
    }
    (speculation_rows, speculation_headline)
}

/// The chunked-prefill + speculative-decoding experiment (`bench_chunked`):
///
/// * **TPOT isolation** — on the mixed long-document + chat trace at a
///   fixed rate, the chat lane's p99 TPOT and the document lane's p99
///   TTFT, chunked versus unchunked, software versus DECA. Chunking bounds
///   the decode stall a monolithic document prefill inflicts on
///   co-resident chats; the document pays its prefill in installments.
/// * **Chunk-budget capacity sweep** (DECA) — the chat rate one replica
///   sustains at the interactive p99 SLO across chunk budgets, locating
///   the knee between stall isolation and per-chunk step overhead.
/// * **Goodput vs acceptance rate** — speculative decoding with a
///   Llama-2-7B draft model against the 70B target on a decode-heavy chat
///   trace: p99 TPOT and SLO goodput as the acceptance rate rises from 0
///   to 1, software versus DECA.
///
/// Fully deterministic (only the surrounding `wall_ms` is volatile).
#[must_use]
pub fn chunked_results() -> Json {
    let machine = MachineConfig::spr_hbm();
    let model = LlmModel::llama2_70b();
    let scheme = CompressionScheme::bf8_sparse(0.05);
    let slo = SloTarget::interactive();
    let budget = hbm_kv_budget_tokens(&model, &scheme).expect("Q8_5% fits");
    let config = ServingConfig::paged(CHUNKED_MAX_BATCH, budget, CHUNKED_BLOCK_SIZE)
        .with_prefix_sharing(true);
    let mix = chunked_mix();
    let trace = mix.generate();

    let (isolation_rows, isolation_headline) =
        chunked_isolation_section(&machine, &model, scheme, &config, &mix, &trace);

    // Chunk-budget capacity sweep on DECA: where is the knee? The
    // interactive SLO can never admit a document lane (an 8k-token prefill
    // alone runs ~25 s), so the sweep judges against a document-tolerant
    // target: TTFT bounded by the backlog budget, TPOT by a streaming
    // bound loose enough that only unchunked (or over-coarse) runs blow
    // through it.
    let doc_slo = SloTarget {
        ttft_s: 60.0,
        tpot_s: 2.0,
    };
    let spec = CapacitySpec {
        slo: doc_slo,
        requests: mix.requests(),
        seed: CHUNKED_SEED,
        min_rate: 0.05,
        max_rate: 1.0,
        iterations: if cfg!(debug_assertions) { 3 } else { 5 },
    };
    let mut sweep_cost = EstimatorCostModel::new(
        machine.clone(),
        model.clone(),
        scheme,
        Engine::deca_default(),
    );
    let sweep_points = deca_serve::chunk_budget_capacity_sweep_with(
        &mut sweep_cost,
        &config,
        &spec,
        &[None, Some(256), Some(CHUNKED_BUDGET_TOKENS), Some(2_048)],
        |rate| mix.with_rate(rate).generate(),
    );
    let sweep_rows: Vec<Json> = sweep_points
        .iter()
        .map(|point| {
            Json::obj(vec![
                (
                    "chunk_budget_tokens",
                    point
                        .chunk_budget_tokens
                        .map_or(Json::Null, |b| num(b as f64)),
                ),
                ("max_rate_rps", num(point.capacity.max_rate_rps)),
                ("p99_ttft_s", num(point.capacity.p99_ttft_s)),
                ("p99_tpot_ms", num(point.capacity.p99_tpot_s * 1e3)),
                ("goodput_rps", num(point.capacity.goodput_rps)),
            ])
        })
        .collect();

    let (speculation_rows, speculation_headline) =
        chunked_speculation_section(&machine, &model, scheme, &slo, budget);

    Json::obj(vec![
        ("machine", Json::str(machine.name.clone())),
        ("model", Json::str(model.name().to_string())),
        ("scheme", Json::str(scheme.label())),
        ("block_size", num(CHUNKED_BLOCK_SIZE as f64)),
        ("max_batch", num(CHUNKED_MAX_BATCH as f64)),
        ("chat_rate_rps", num(CHUNKED_CHAT_RATE)),
        ("chat_requests", num(CHUNKED_CHAT_REQUESTS as f64)),
        ("doc_requests", num(mix.doc_requests as f64)),
        ("chunk_budget_tokens", num(CHUNKED_BUDGET_TOKENS as f64)),
        (
            "isolation",
            Json::obj(vec![
                ("engines", Json::Arr(isolation_rows)),
                ("headline", Json::str(isolation_headline)),
            ]),
        ),
        (
            "budget_sweep",
            Json::obj(vec![
                ("slo_ttft_s", num(doc_slo.ttft_s)),
                ("slo_tpot_ms", num(doc_slo.tpot_s * 1e3)),
                ("points", Json::Arr(sweep_rows)),
            ]),
        ),
        (
            "speculation",
            Json::obj(vec![
                (
                    "draft_model",
                    Json::str(LlmModel::llama2_7b().name().to_string()),
                ),
                ("draft_tokens", num(CHUNKED_DRAFT_TOKENS as f64)),
                ("slo_tpot_ms", num(slo.tpot_s * 1e3)),
                ("engines", Json::Arr(speculation_rows)),
                ("headline", Json::str(speculation_headline)),
            ]),
        ),
    ])
}

/// Interactive requests of the multi-tenant experiment's headline trace
/// (shrunk in debug builds so plain `cargo test` stays fast; the
/// committed baseline is regenerated in release mode).
const TENANT_INTERACTIVE_REQUESTS: usize = if cfg!(debug_assertions) { 16 } else { 48 };
/// Bisection refinements of the per-class capacity search.
const TENANT_SEARCH_ITERATIONS: usize = if cfg!(debug_assertions) { 3 } else { 5 };
/// Tokens per KV block of the multi-tenant replicas.
const TENANT_BLOCK_SIZE: usize = 32;
/// Decode batch limit of the multi-tenant replicas.
const TENANT_MAX_BATCH: usize = 16;
/// Weight-token footprint of one LoRA adapter — the weight traffic a
/// cache miss loads, priced like prefilling that many tokens.
const TENANT_ADAPTER_TOKENS: usize = 64;
/// Adapter cache slots of the headline runs: every one of the trace's
/// twelve tenants fits, so after the warmup loads the cache absorbs the
/// churn (the detail rows shrink it to show what thrash costs).
const TENANT_CACHE_SLOTS: usize = 12;
/// Adapter cache slots of the deliberately thrashing detail row.
const TENANT_THRASH_SLOTS: usize = 2;
/// Consecutive Interactive bypasses before a waiting Batch request is
/// promoted to the queue front.
const TENANT_QOS_AGING: usize = 8;
/// Fixed interactive arrival rate of the adapter-cache detail rows
/// (requests/sec).
const TENANT_DETAIL_RATE: f64 = 0.25;
/// p99 TTFT bound of the Batch lane's relaxed SLO (seconds):
/// latency-tolerant, not unbounded — the anti-starvation check.
const TENANT_BATCH_TTFT_S: f64 = 120.0;
/// p99 TPOT bound of the Batch lane's relaxed SLO (seconds).
const TENANT_BATCH_TPOT_S: f64 = 1.0;
/// Documents of the RAG prefix-reuse corpus (eight sessions each).
const TENANT_RAG_DOCUMENTS: usize = if cfg!(debug_assertions) { 4 } else { 8 };
/// Agent runs of the agentic prefix-reuse trace.
const TENANT_AGENT_SESSIONS: usize = if cfg!(debug_assertions) { 6 } else { 12 };
/// Arrival rate of the prefix-reuse rows (requests or sessions per sec).
const TENANT_PREFIX_RATE: f64 = 0.25;
/// Trace seed of the multi-tenant experiment.
const TENANT_SEED: u64 = 47;

/// The mixed interactive/batch LoRA trace of `bench_multitenant` (the
/// interactive rate is substituted per capacity probe; the batch lane
/// scales with it).
fn tenant_mix(interactive_rate: f64) -> MultiTenantSpec {
    MultiTenantSpec::fleet(interactive_rate, TENANT_INTERACTIVE_REQUESTS, TENANT_SEED)
}

/// The Batch lane's relaxed SLO.
fn tenant_batch_slo() -> SloTarget {
    SloTarget {
        ttft_s: TENANT_BATCH_TTFT_S,
        tpot_s: TENANT_BATCH_TPOT_S,
    }
}

/// The JSON fields one service class contributes to a row.
fn tenant_class_fields(prefix: &str, outcome: &ClassOutcome) -> Vec<(String, Json)> {
    vec![
        (format!("{prefix}_p99_ttft_s"), num(outcome.p99_ttft_s)),
        (
            format!("{prefix}_p99_tpot_ms"),
            num(outcome.p99_tpot_s * 1e3),
        ),
        (format!("{prefix}_goodput_rps"), num(outcome.goodput_rps)),
    ]
}

/// The per-class capacity leg of `bench_multitenant`: the highest
/// interactive rate one replica sustains on the mixed LoRA trace while
/// the Interactive lane meets the interactive p99 SLO *and* the Batch
/// lane meets its relaxed SLO (no starvation), per engine — plus the DECA
/// headline with the winning rate's per-class goodput split.
fn tenant_capacity_rows(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
    slo: &SloTarget,
) -> (Vec<Json>, String) {
    let workload = tenant_mix(1.0);
    let budget = hbm_kv_budget_tokens(model, scheme).expect("Q8_5% fits");
    let config = ServingConfig::paged(TENANT_MAX_BATCH, budget, TENANT_BLOCK_SIZE)
        .with_adapters(AdapterModel::new(TENANT_ADAPTER_TOKENS, TENANT_CACHE_SLOTS))
        .with_qos_aging(TENANT_QOS_AGING);
    let batch_slo = tenant_batch_slo();
    let spec = CapacitySpec {
        slo: *slo,
        requests: workload.requests(),
        seed: TENANT_SEED,
        min_rate: 0.05,
        max_rate: 16.0,
        iterations: TENANT_SEARCH_ITERATIONS,
    };
    let mut rows = Vec::new();
    let mut headline = String::new();
    for (engine_label, engine) in [
        ("software", Engine::software()),
        ("deca", Engine::deca_default()),
    ] {
        let mut cost = EstimatorCostModel::new(machine.clone(), model.clone(), *scheme, engine);
        let result = qos_capacity_search_with(&mut cost, &config, &spec, &batch_slo, |rate| {
            workload.with_rate(rate).generate()
        });
        if engine_label == "deca" {
            headline = format!(
                "with {} paged LoRA tenants and QoS admission, one DECA socket sustains {:.2} \
                 interactive req/s at the interactive p99 SLO while the batch lane holds its \
                 relaxed SLO un-starved ({:.2} interactive vs {:.2} batch goodput req/s, {} {})",
                workload.tenants,
                result.max_rate_rps,
                result.interactive.goodput_rps,
                result.batch.goodput_rps,
                model.name(),
                scheme.label(),
            );
        }
        let mut row: Vec<(String, Json)> = vec![
            ("engine".to_string(), Json::str(engine_label)),
            ("interactive_rps".to_string(), num(result.max_rate_rps)),
        ];
        row.extend(tenant_class_fields("interactive", &result.interactive));
        row.extend(tenant_class_fields("batch", &result.batch));
        rows.push(Json::Obj(row));
    }
    (rows, headline)
}

/// The adapter-cache leg of `bench_multitenant`: the mixed trace at one
/// fixed rate (DECA) under no adapters, a deliberately thrashing
/// [`TENANT_THRASH_SLOTS`]-slot cache, and the roomy headline cache —
/// per-class tails plus the cache counters that explain the gap — and the
/// QoS fairness counters of the roomy run.
fn tenant_adapter_rows(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
    slo: &SloTarget,
) -> (Vec<Json>, Json) {
    let trace = tenant_mix(TENANT_DETAIL_RATE).generate();
    let budget = hbm_kv_budget_tokens(model, scheme).expect("Q8_5% fits");
    let base = ServingConfig::paged(TENANT_MAX_BATCH, budget, TENANT_BLOCK_SIZE)
        .with_qos_aging(TENANT_QOS_AGING);
    let batch_slo = tenant_batch_slo();
    // One warm cost model across the three runs: its answers are pure
    // functions of (batch, context), independent of the adapter config.
    let mut cost = EstimatorCostModel::new(
        machine.clone(),
        model.clone(),
        *scheme,
        Engine::deca_default(),
    );
    let mut rows = Vec::new();
    let mut qos_detail = Json::Null;
    for (label, adapters) in [
        ("no-adapters", AdapterModel::disabled()),
        (
            "thrash",
            AdapterModel::new(TENANT_ADAPTER_TOKENS, TENANT_THRASH_SLOTS),
        ),
        (
            "cached",
            AdapterModel::new(TENANT_ADAPTER_TOKENS, TENANT_CACHE_SLOTS),
        ),
    ] {
        let mut simulator = ServingSimulator::new(cost.clone(), base.with_adapters(adapters));
        let report = simulator.run(&trace);
        cost = simulator.into_cost_model();
        let interactive = report.class_metrics(QosClass::Interactive);
        let batch = report.class_metrics(QosClass::Batch);
        rows.push(Json::obj(vec![
            ("cache", Json::str(label)),
            ("completed", num(report.completed() as f64)),
            ("rejected", num(report.rejected as f64)),
            ("makespan_s", num(report.makespan_s)),
            ("interactive_p99_ttft_s", num(interactive.ttft.p99_s)),
            ("interactive_p99_tpot_ms", num(interactive.tpot.p99_s * 1e3)),
            (
                "interactive_goodput_rps",
                num(report.class_goodput_rps(QosClass::Interactive, slo)),
            ),
            ("batch_p99_ttft_s", num(batch.ttft.p99_s)),
            (
                "batch_goodput_rps",
                num(report.class_goodput_rps(QosClass::Batch, &batch_slo)),
            ),
            ("adapter_loads", num(report.adapters.cache_loads as f64)),
            ("adapter_hits", num(report.adapters.cache_hits as f64)),
            ("adapter_hit_rate", num(report.adapters.hit_rate())),
            ("adapter_evictions", num(report.adapters.evictions as f64)),
            (
                "adapter_reserved_blocks",
                num(report.adapters.reserved_blocks as f64),
            ),
        ]));
        if label == "cached" {
            qos_detail = Json::obj(vec![
                (
                    "interactive_admitted",
                    num(report.qos.interactive_admitted as f64),
                ),
                ("batch_admitted", num(report.qos.batch_admitted as f64)),
                (
                    "interactive_bypasses",
                    num(report.qos.interactive_bypasses as f64),
                ),
                ("aging_promotions", num(report.qos.aging_promotions as f64)),
                (
                    "peak_interactive_run",
                    num(report.qos.peak_interactive_run as f64),
                ),
            ]);
        }
    }
    (rows, qos_detail)
}

/// The prefix-reuse leg of `bench_multitenant`: unique-prompt chat, the
/// RAG corpus (many sessions per shared document), and the agentic
/// tool-loop trace, each served on one paged + prefix-sharing DECA
/// replica — the prefix-cache hit rate is the experiment's RAG-vs-chat
/// headline number.
fn tenant_prefix_rows(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
) -> (Vec<Json>, String) {
    let budget = hbm_kv_budget_tokens(model, scheme).expect("Q8_5% fits");
    let config =
        ServingConfig::paged(TENANT_MAX_BATCH, budget, TENANT_BLOCK_SIZE).with_prefix_sharing(true);
    let rag = RagSpec::fleet(TENANT_PREFIX_RATE, TENANT_RAG_DOCUMENTS, TENANT_SEED);
    let chat = WorkloadSpec::chat(TENANT_PREFIX_RATE, rag.requests(), TENANT_SEED);
    // Agent runs arrive slower than questions: each run fans out into
    // `tool_calls + 1` requests of its own.
    let agent = AgentLoopSpec::fleet(TENANT_PREFIX_RATE / 4.0, TENANT_AGENT_SESSIONS, TENANT_SEED);
    let workloads: [(&str, RequestTrace); 3] = [
        ("chat", chat.generate()),
        ("rag", rag.generate()),
        ("agentic", agent.generate()),
    ];
    let mut cost = EstimatorCostModel::new(
        machine.clone(),
        model.clone(),
        *scheme,
        Engine::deca_default(),
    );
    let mut rows = Vec::new();
    let mut hit_rates = Vec::new();
    for (label, trace) in workloads {
        let mut simulator = ServingSimulator::new(cost.clone(), config);
        let report = simulator.run(&trace);
        cost = simulator.into_cost_model();
        let paged = report.paged.expect("paged run");
        hit_rates.push(paged.prefix_hit_rate());
        rows.push(Json::obj(vec![
            ("workload", Json::str(label)),
            ("requests", num(trace.len() as f64)),
            ("completed", num(report.completed() as f64)),
            ("prefix_hit_rate", num(paged.prefix_hit_rate())),
            ("prefix_hit_tokens", num(paged.prefix_hit_tokens as f64)),
            (
                "prefix_uncached_tokens",
                num(paged.prefix_uncached_tokens as f64),
            ),
            ("p99_ttft_s", num(report.metrics().ttft.p99_s)),
        ]));
    }
    let headline = format!(
        "on one paged + prefix-sharing DECA socket, RAG sessions over {TENANT_RAG_DOCUMENTS} \
         shared documents reuse {:.0}% of their prompt tokens from the radix cache versus \
         {:.0}% for unique-prompt chat (agentic tool loops: {:.0}%)",
        hit_rates[1] * 100.0,
        hit_rates[0] * 100.0,
        hit_rates[2] * 100.0,
    );
    (rows, headline)
}

/// The multi-tenant serving experiment (`bench_multitenant`):
///
/// * **Per-class capacity** — on the mixed interactive/batch LoRA trace
///   (twelve tenant adapters paged through the block pool), the highest
///   interactive rate one replica sustains with the Interactive lane at
///   the interactive p99 SLO and the Batch lane within its relaxed SLO
///   under priority admission with aging, software versus DECA.
/// * **Adapter cache** — the same trace at a fixed rate under no
///   adapters, a thrashing two-slot cache, and the roomy headline cache:
///   cache-miss weight loads are priced like prefill, so thrash shows up
///   directly in the makespan and the batch lane's tail.
/// * **Prefix reuse** — chat vs RAG vs agentic traces on a paged +
///   prefix-sharing replica: the RAG corpus's shared documents and the
///   agents' growing transcripts turn into radix-cache hits that
///   unique-prompt chat cannot get.
///
/// Fully deterministic (only the surrounding `wall_ms` is volatile).
#[must_use]
pub fn multitenant_results() -> Json {
    let machine = MachineConfig::spr_hbm();
    let model = LlmModel::llama2_70b();
    let scheme = CompressionScheme::bf8_sparse(0.05);
    let slo = SloTarget::interactive();

    let (capacity_rows, capacity_headline) = tenant_capacity_rows(&machine, &model, &scheme, &slo);
    let (adapter_rows, qos_detail) = tenant_adapter_rows(&machine, &model, &scheme, &slo);
    let (prefix_rows, prefix_headline) = tenant_prefix_rows(&machine, &model, &scheme);

    Json::obj(vec![
        ("machine", Json::str(machine.name.clone())),
        ("model", Json::str(model.name().to_string())),
        ("scheme", Json::str(scheme.label())),
        ("block_size", num(TENANT_BLOCK_SIZE as f64)),
        ("max_batch", num(TENANT_MAX_BATCH as f64)),
        ("tenants", num(tenant_mix(1.0).tenants as f64)),
        ("adapter_weight_tokens", num(TENANT_ADAPTER_TOKENS as f64)),
        ("adapter_cache_slots", num(TENANT_CACHE_SLOTS as f64)),
        ("qos_aging", num(TENANT_QOS_AGING as f64)),
        ("interactive_slo_ttft_s", num(slo.ttft_s)),
        ("interactive_slo_tpot_ms", num(slo.tpot_s * 1e3)),
        ("batch_slo_ttft_s", num(TENANT_BATCH_TTFT_S)),
        ("batch_slo_tpot_ms", num(TENANT_BATCH_TPOT_S * 1e3)),
        (
            "capacity",
            Json::obj(vec![
                ("engines", Json::Arr(capacity_rows)),
                ("headline", Json::str(capacity_headline)),
            ]),
        ),
        (
            "adapter_cache",
            Json::obj(vec![
                ("rate_rps", num(TENANT_DETAIL_RATE)),
                ("rows", Json::Arr(adapter_rows)),
                ("qos", qos_detail),
            ]),
        ),
        (
            "prefix_reuse",
            Json::obj(vec![
                ("rows", Json::Arr(prefix_rows)),
                ("headline", Json::str(prefix_headline)),
            ]),
        ),
    ])
}

/// Sessions in the sim-speed trace: a million in release — the ROADMAP's
/// "millions of users" scale, and the CI `simspeed` gate — shrunk in debug
/// builds so `cargo test` exercises the same code in moments.
pub const SIMSPEED_SESSIONS: usize = if cfg!(debug_assertions) {
    2_000
} else {
    1_000_000
};
/// Decode batch limit of the sim-speed replica.
const SIMSPEED_MAX_BATCH: usize = 64;
/// KV budget (tokens) of the sim-speed replica: roomy enough that the
/// reserve-up-front policies rarely queue, tight enough to stay realistic.
const SIMSPEED_KV_BUDGET: usize = 100_000;

/// One sim-speed row: simulate the deterministic workload under `config`
/// and report throughput in sessions per second *of simulation wall time*
/// — the figure of merit of the event core — alongside the simulated
/// makespan and the step/queue counters that pin the simulation itself
/// (everything except the `wall`-named fields is deterministic; the drift
/// check strips those recursively). The workload streams through
/// [`ServingSimulator::run_streamed`] — arrivals are generated lazily and
/// request slots recycled, so the run never materializes the million-entry
/// trace (and the wall clock covers generation + simulation together, the
/// honest cost of the streaming loop).
fn simspeed_row(policy: &str, sessions: usize, config: &ServingConfig) -> Json {
    let spec = SharedPrefixChatSpec::simspeed(sessions);
    let stream = spec.stream();
    let requests = stream.len();
    let start = Instant::now();
    let report = ServingSimulator::new(deca_serve::LinearCostModel::default_70b(), *config)
        .run_streamed(stream);
    let wall_secs = start.elapsed().as_secs_f64();
    Json::obj(vec![
        ("policy", Json::str(policy)),
        ("sessions", num(sessions as f64)),
        ("requests", num(requests as f64)),
        ("completed", num(report.completed() as f64)),
        ("rejected", num(report.rejected as f64)),
        ("admitted", num(report.admitted as f64)),
        ("makespan_s", num(report.makespan_s)),
        (
            // Deterministic throughput: sessions per second of *simulated*
            // time — how much serving the modeled replica sustains, fixed
            // by the trace and the cost model, unlike the wall fields.
            "sessions_per_sim_sec",
            num(if report.makespan_s > 0.0 {
                sessions as f64 / report.makespan_s
            } else {
                0.0
            }),
        ),
        ("decode_steps", num(report.decode_steps as f64)),
        ("prefill_steps", num(report.prefill_steps as f64)),
        ("peak_batch", num(report.peak_batch as f64)),
        ("peak_queue_depth", num(report.peak_queue_depth as f64)),
        ("wall_secs", num(wall_secs)),
        (
            "sessions_per_wall_sec",
            num(if wall_secs > 0.0 {
                sessions as f64 / wall_secs
            } else {
                0.0
            }),
        ),
    ])
}

/// The simulator-speed experiment (`bench_simspeed`, and CI's `simspeed`
/// job): the deterministic [`SharedPrefixChatSpec::simspeed`] workload
/// streamed through the event core at million-session scale. Three rows,
/// all at the full session count: continuous batching, paged (no
/// sharing), and paged + prefix sharing — the last runs at full scale now
/// that the radix cache maintains its evictable count and LRU order
/// incrementally (admission is O(log cache) instead of the old O(cache)
/// scan that forced a tenth-scale row). Every field except the
/// `wall`-named ones is deterministic.
#[must_use]
pub fn simspeed_results() -> Json {
    let continuous = ServingConfig::continuous(SIMSPEED_MAX_BATCH, SIMSPEED_KV_BUDGET);
    let paged = ServingConfig::paged(SIMSPEED_MAX_BATCH, SIMSPEED_KV_BUDGET, 16);
    let rows = vec![
        simspeed_row("continuous", SIMSPEED_SESSIONS, &continuous),
        simspeed_row("paged", SIMSPEED_SESSIONS, &paged),
        simspeed_row(
            "paged+prefix",
            SIMSPEED_SESSIONS,
            &ServingConfig {
                prefix_sharing: true,
                ..paged
            },
        ),
    ];
    Json::obj(vec![
        ("max_batch", num(SIMSPEED_MAX_BATCH as f64)),
        ("kv_budget_tokens", num(SIMSPEED_KV_BUDGET as f64)),
        ("rows", Json::Arr(rows)),
    ])
}

/// Runs one experiment, wrapping its results with the name and wall time —
/// the record shape `collect` assembles and the standalone `bench_simspeed`
/// binary emits for the drift check.
#[must_use]
pub fn experiment_record(name: &str, run: fn() -> Json) -> Json {
    let start = Instant::now();
    let results = run();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    Json::obj(vec![
        ("name", Json::str(name)),
        ("wall_ms", num(wall_ms)),
        ("results", results),
    ])
}

/// A full-document wrapper around a single experiment record, so partial
/// artifacts (e.g. CI's `BENCH_simspeed.json`) share the baseline schema.
#[must_use]
pub fn single_experiment_document(name: &str, run: fn() -> Json) -> Json {
    Json::obj(vec![
        ("schema_version", num(f64::from(SCHEMA_VERSION))),
        ("command", Json::str(REGENERATE_COMMAND)),
        ("experiments", Json::Arr(vec![experiment_record(name, run)])),
    ])
}

/// An experiment runner, as registered in [`experiments`].
pub type ExperimentFn = fn() -> Json;

/// The baseline experiment registry, in document order — the single list
/// [`collect`] runs and `bench_drift --write --experiment` refreshes from.
#[must_use]
pub fn experiments() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("roofsurface", roofsurface_results),
        ("pipeline", pipeline_results),
        ("llm_latency", llm_latency_results),
        ("bench_engines", engine_results),
        ("bench_serving", serving_results),
        ("bench_sharding", sharding_results),
        ("bench_paged", paged_results),
        ("bench_disagg", disagg_results),
        ("bench_simspeed", simspeed_results),
        ("bench_chunked", chunked_results),
        ("bench_multitenant", multitenant_results),
    ]
}

/// Runs every baseline experiment, recording wall time per experiment, and
/// assembles the full document.
#[must_use]
pub fn collect() -> Json {
    let records = experiments()
        .into_iter()
        .map(|(name, run)| experiment_record(name, run))
        .collect();
    Json::obj(vec![
        ("schema_version", num(f64::from(SCHEMA_VERSION))),
        ("command", Json::str(REGENERATE_COMMAND)),
        ("experiments", Json::Arr(records)),
    ])
}

/// Renders `doc` and writes it to `path` with the committed-artifact
/// convention (compact JSON, trailing newline) — the write half of
/// `bench_drift --write`.
///
/// # Errors
///
/// Propagates the I/O error when the path cannot be written.
pub fn write_artifact(path: &std::path::Path, doc: &Json) -> std::io::Result<()> {
    let mut rendered = doc.render();
    rendered.push('\n');
    std::fs::write(path, rendered)
}

/// Re-runs the registered experiment `name` and replaces its records in
/// `doc` in place (every other experiment's committed numbers are left
/// untouched) — the selective half of `bench_drift --write`. A registered
/// experiment the document does not carry yet (a freshly added one) is
/// appended instead, so growing the registry never forces a full-document
/// regeneration.
///
/// # Errors
///
/// Returns a message naming the registry when `name` is not a registered
/// experiment, or when `doc` carries no `experiments` array to extend.
pub fn refresh_experiment(doc: Json, name: &str) -> Result<Json, String> {
    let Some((_, run)) = experiments().into_iter().find(|(n, _)| *n == name) else {
        let known: Vec<&str> = experiments().iter().map(|(n, _)| *n).collect();
        return Err(format!(
            "no registered experiment {name:?} (registered: {})",
            known.join(", ")
        ));
    };
    let Json::Obj(entries) = doc else {
        return Err("baseline document must be an object".to_string());
    };
    let mut replaced = false;
    let mut extended = false;
    let entries = entries
        .into_iter()
        .map(|(key, value)| {
            if key != "experiments" {
                return (key, value);
            }
            let Json::Arr(records) = value else {
                return (key, value);
            };
            let mut records: Vec<Json> = records
                .into_iter()
                .map(|record| {
                    let is_named = matches!(&record, Json::Obj(fields)
                        if fields.iter().any(|(k, v)| k == "name"
                            && matches!(v, Json::Str(s) if s == name)));
                    if is_named && !replaced {
                        replaced = true;
                        experiment_record(name, run)
                    } else {
                        record
                    }
                })
                .collect();
            if !replaced {
                // A registered experiment the artifact predates: append
                // its first record, leaving every committed one intact.
                records.push(experiment_record(name, run));
                extended = true;
            }
            (key, Json::Arr(records))
        })
        .collect();
    if !replaced && !extended {
        return Err(format!(
            "the document carries no `experiments` array to refresh {name:?} in"
        ));
    }
    Ok(Json::Obj(entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(obj: &'a Json, key: &str) -> &'a Json {
        match obj {
            Json::Obj(entries) => {
                &entries
                    .iter()
                    .find(|(k, _)| k == key)
                    .unwrap_or_else(|| panic!("missing key {key}"))
                    .1
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn document_has_all_experiments() {
        let doc = collect();
        let Json::Arr(experiments) = find(&doc, "experiments") else {
            panic!("experiments must be an array");
        };
        let names: Vec<String> = experiments
            .iter()
            .map(|e| match find(e, "name") {
                Json::Str(s) => s.clone(),
                other => panic!("name must be a string, got {other:?}"),
            })
            .collect();
        assert_eq!(
            names,
            [
                "roofsurface",
                "pipeline",
                "llm_latency",
                "bench_engines",
                "bench_serving",
                "bench_sharding",
                "bench_paged",
                "bench_disagg",
                "bench_simspeed",
                "bench_chunked",
                "bench_multitenant"
            ]
        );
        for experiment in experiments {
            match find(experiment, "wall_ms") {
                Json::Num(ms) => assert!(*ms >= 0.0),
                other => panic!("wall_ms must be a number, got {other:?}"),
            }
        }
    }

    #[test]
    fn write_then_check_is_clean() {
        let path = std::env::temp_dir().join(format!(
            "deca_bench_write_roundtrip_{}.json",
            std::process::id()
        ));
        let doc = single_experiment_document("roofsurface", roofsurface_results);
        write_artifact(&path, &doc).expect("artifact must be writable");
        let text = std::fs::read_to_string(&path).expect("artifact must read back");
        std::fs::remove_file(&path).ok();
        assert!(text.ends_with('\n'), "artifact must end with a newline");
        let reparsed = crate::drift::parse(&text).expect("artifact must reparse");
        let fresh = single_experiment_document("roofsurface", roofsurface_results);
        let lines = crate::drift::diff(
            &crate::drift::strip_volatile(reparsed),
            &crate::drift::strip_volatile(fresh),
        );
        assert!(lines.is_empty(), "write-then-check drifted: {lines:?}");
    }

    #[test]
    fn refresh_experiment_replaces_only_the_named_record() {
        let stale = |name: &str, results: &str| {
            Json::obj(vec![
                ("name", Json::str(name)),
                ("wall_ms", num(0.0)),
                ("results", Json::str(results)),
            ])
        };
        let doc = Json::obj(vec![
            ("schema_version", num(f64::from(SCHEMA_VERSION))),
            ("command", Json::str(REGENERATE_COMMAND)),
            (
                "experiments",
                Json::Arr(vec![
                    stale("roofsurface", "stale"),
                    stale("handwritten", "untouched"),
                ]),
            ),
        ]);
        let refreshed = refresh_experiment(doc.clone(), "roofsurface").expect("refresh must work");
        let Json::Arr(records) = find(&refreshed, "experiments") else {
            panic!("experiments must be an array");
        };
        assert_eq!(records.len(), 2, "record count must be preserved");
        assert_eq!(
            records[1],
            stale("handwritten", "untouched"),
            "unnamed records must be untouched"
        );
        let fresh = experiment_record("roofsurface", roofsurface_results);
        let lines = crate::drift::diff(
            &crate::drift::strip_volatile(records[0].clone()),
            &crate::drift::strip_volatile(fresh),
        );
        assert!(lines.is_empty(), "refreshed record drifted: {lines:?}");

        let unknown = refresh_experiment(doc, "no_such_experiment").unwrap_err();
        assert!(
            unknown.contains("roofsurface"),
            "error must name the registry"
        );
    }

    /// A registered experiment the committed artifact predates is appended
    /// by `refresh_experiment` — the committed records stay byte-for-byte
    /// intact, so adding an experiment never forces regenerating the rest.
    #[test]
    fn refresh_experiment_appends_a_missing_registered_experiment() {
        let stale = Json::obj(vec![
            ("name", Json::str("handwritten")),
            ("wall_ms", num(0.0)),
            ("results", Json::str("untouched")),
        ]);
        let doc = Json::obj(vec![
            ("schema_version", num(f64::from(SCHEMA_VERSION))),
            ("command", Json::str(REGENERATE_COMMAND)),
            ("experiments", Json::Arr(vec![stale.clone()])),
        ]);
        let refreshed = refresh_experiment(doc, "roofsurface").expect("append must work");
        let Json::Arr(records) = find(&refreshed, "experiments") else {
            panic!("experiments must be an array");
        };
        assert_eq!(records.len(), 2, "the new record must be appended");
        assert_eq!(records[0], stale, "committed records must be untouched");
        let fresh = experiment_record("roofsurface", roofsurface_results);
        let lines = crate::drift::diff(
            &crate::drift::strip_volatile(records[1].clone()),
            &crate::drift::strip_volatile(fresh),
        );
        assert!(lines.is_empty(), "appended record drifted: {lines:?}");
    }

    #[test]
    fn pipeline_results_report_deca_speedups() {
        let pipeline = pipeline_results();
        let Json::Arr(kernels) = find(&pipeline, "kernels") else {
            panic!("kernels must be an array");
        };
        assert!(!kernels.is_empty());
        for kernel in kernels {
            for key in [
                "software_tflops",
                "deca_tflops",
                "software_cycles_per_tile",
                "deca_cycles_per_tile",
                "deca_speedup_vs_software",
            ] {
                match find(kernel, key) {
                    Json::Num(v) => assert!(v.is_finite() && *v > 0.0, "{key} = {v}"),
                    other => panic!("{key} must be a number, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn engine_results_verify_bit_exactness() {
        let engines = engine_results();
        let Json::Arr(schemes) = find(&engines, "schemes") else {
            panic!("schemes must be an array");
        };
        assert_eq!(schemes.len(), 3);
        for scheme in schemes {
            let Json::Arr(entries) = find(scheme, "engines") else {
                panic!("engines must be an array");
            };
            assert_eq!(entries.len(), EngineKind::all().len());
            for entry in entries {
                match find(entry, "bit_exact") {
                    Json::Bool(exact) => assert!(*exact, "engine must match the reference"),
                    other => panic!("bit_exact must be a bool, got {other:?}"),
                }
                match find(entry, "dense_gbps") {
                    Json::Num(v) => assert!(v.is_finite() && *v > 0.0),
                    other => panic!("dense_gbps must be a number, got {other:?}"),
                }
            }
        }
    }

    fn try_find<'a>(obj: &'a Json, key: &str) -> Option<&'a Json> {
        match obj {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    #[test]
    fn serving_results_show_deca_capacity_advantage() {
        let serving = serving_results();
        let Json::Arr(rows) = find(&serving, "capacity") else {
            panic!("capacity must be an array");
        };
        assert_eq!(rows.len(), 3);
        for row in rows {
            // DECA always sustains some load at the interactive SLO.
            match find(row, "deca_rps") {
                Json::Num(v) => assert!(v.is_finite() && *v > 0.0, "deca_rps = {v}"),
                other => panic!("deca_rps must be a number, got {other:?}"),
            }
            // The ratio is present exactly when software met the SLO at
            // all, and it is then strictly above 1: DECA serves more load
            // per socket than software decompression on every scheme.
            let Json::Num(sw) = find(row, "software_rps") else {
                panic!("software_rps must be a number");
            };
            match (*sw > 0.0, try_find(row, "deca_vs_software")) {
                (true, Some(Json::Num(ratio))) => {
                    assert!(*ratio > 1.0, "DECA vs software capacity ratio {ratio}");
                }
                (false, None) => {} // software cannot meet the SLO at all
                (present, ratio) => {
                    panic!("software_rps>0 = {present} inconsistent with ratio {ratio:?}")
                }
            }
        }
        match find(&serving, "headline") {
            Json::Str(s) => assert!(s.contains("DECA sustains"), "{s}"),
            other => panic!("headline must be a string, got {other:?}"),
        }
        // Continuous batching beats static batching on goodput for the
        // bursty workload.
        match find(&serving, "continuous_vs_static_goodput") {
            Json::Num(ratio) => assert!(*ratio > 1.0, "continuous vs static goodput {ratio}"),
            other => panic!("goodput ratio must be a number, got {other:?}"),
        }
    }

    /// The sharding experiment's acceptance shape: at least one Table 4
    /// scheme fails the one-socket HBM fit with its KV working set but
    /// meets the interactive p99 SLO at TP ≥ 2 with DECA.
    #[test]
    fn sharding_results_show_a_scheme_served_only_by_sharding() {
        let sharding = sharding_results();
        let Json::Arr(schemes) = find(&sharding, "schemes") else {
            panic!("schemes must be an array");
        };
        assert_eq!(schemes.len(), 3);
        let mut criterion_met = false;
        for row in schemes {
            let one_socket = find(row, "one_socket");
            let Json::Bool(fits_working_set) = find(one_socket, "fits_working_set") else {
                panic!("fits_working_set must be a bool");
            };
            let deca_min = try_find(row, "deca_min_sockets");
            if let (false, Some(Json::Num(sockets))) = (*fits_working_set, deca_min) {
                assert!(*sockets >= 2.0, "sharding must take at least 2 sockets");
                criterion_met = true;
            }
            // Every scheme reports a full TP curve with positive latencies.
            let Json::Arr(curve) = find(row, "tp_curve") else {
                panic!("tp_curve must be an array");
            };
            assert_eq!(curve.len(), 4);
            for point in curve {
                match find(point, "software_ms") {
                    Json::Num(ms) => assert!(ms.is_finite() && *ms > 0.0),
                    other => panic!("software_ms must be a number, got {other:?}"),
                }
            }
        }
        assert!(
            criterion_met,
            "some Table 4 scheme must fail one socket but serve at TP >= 2 with DECA"
        );
        match find(&sharding, "headline") {
            Json::Str(s) => assert!(s.contains("sockets"), "{s}"),
            other => panic!("headline must be a string, got {other:?}"),
        }
    }

    /// The paged experiment's acceptance shape: paged+prefix serves
    /// strictly more sessions/sec at the p99 SLO than reserve-up-front on
    /// the shared-prefix trace (every engine × sharding cell), the prefix
    /// hit rate is positive, and the overload scenario exercises the
    /// preemption counters while conserving the trace.
    #[test]
    fn paged_results_show_the_paged_prefix_capacity_win() {
        let paged = paged_results();
        let Json::Arr(shards) = find(&paged, "capacity") else {
            panic!("capacity must be an array");
        };
        assert_eq!(shards.len(), 2, "TP1 and TP2");
        for shard in shards {
            let Json::Arr(engines) = find(shard, "engines") else {
                panic!("engines must be an array");
            };
            assert_eq!(engines.len(), 2, "software and DECA");
            for engine_row in engines {
                let Json::Arr(policies) = find(engine_row, "policies") else {
                    panic!("policies must be an array");
                };
                assert_eq!(policies.len(), 3);
                let rate = |row: &Json| match find(row, "sessions_per_sec") {
                    Json::Num(v) => *v,
                    other => panic!("sessions_per_sec must be a number, got {other:?}"),
                };
                let reserve = rate(&policies[0]);
                let paged_only = rate(&policies[1]);
                let paged_prefix = rate(&policies[2]);
                assert!(
                    paged_prefix > reserve,
                    "paged+prefix ({paged_prefix}) must beat reserve ({reserve})"
                );
                assert!(
                    paged_only >= reserve,
                    "paged ({paged_only}) must not lose to reserve ({reserve})"
                );
                // The ratio is present exactly when reserve-up-front met
                // the SLO at all, and is then strictly above 1.
                match (
                    reserve > 0.0,
                    try_find(engine_row, "paged_prefix_vs_reserve"),
                ) {
                    (true, Some(Json::Num(ratio))) => assert!(*ratio > 1.0, "ratio {ratio}"),
                    (false, None) => {}
                    (present, ratio) => {
                        panic!("reserve>0 = {present} inconsistent with ratio {ratio:?}")
                    }
                }
            }
        }
        match find(&paged, "headline") {
            Json::Str(s) => assert!(s.contains("paged+prefix"), "{s}"),
            other => panic!("headline must be a string, got {other:?}"),
        }
        // The fixed-load detail reports a positive hit rate for the
        // prefix-sharing policy (and only for it).
        let Json::Arr(detail) = find(&paged, "detail") else {
            panic!("detail must be an array");
        };
        assert_eq!(detail.len(), 3);
        match find(&detail[2], "prefix_hit_rate") {
            Json::Num(rate) => assert!(*rate > 0.0, "hit rate {rate}"),
            other => panic!("prefix_hit_rate must be a number, got {other:?}"),
        }
        match find(&detail[1], "prefix_hit_rate") {
            Json::Num(rate) => assert_eq!(*rate, 0.0, "no sharing, no hits"),
            other => panic!("prefix_hit_rate must be a number, got {other:?}"),
        }
        // Overload: preemptions fired and the trace is conserved.
        let overload = find(&paged, "overload");
        match find(overload, "preemptions") {
            Json::Num(n) => assert!(*n > 0.0, "preemptions {n}"),
            other => panic!("preemptions must be a number, got {other:?}"),
        }
        let count = |key: &str| match find(overload, key) {
            Json::Num(v) => *v,
            other => panic!("{key} must be a number, got {other:?}"),
        };
        assert_eq!(count("completed") + count("rejected"), count("offered"));
    }

    /// The disagg experiment's acceptance shape: on the cold-return trace,
    /// tiered KV offload sustains strictly more sessions/sec at the p99
    /// SLO than preempt-by-recompute, and on the long-document trace the
    /// best prefill/decode pool split beats the colocated fleet of the
    /// same socket count — for BOTH engines — with the tier counters
    /// proving the swap path actually fired.
    #[test]
    fn disagg_results_show_the_swap_and_pool_split_wins() {
        let disagg = disagg_results();
        let rate = |row: &Json, key: &str| match find(row, key) {
            Json::Num(v) => *v,
            other => panic!("{key} must be a number, got {other:?}"),
        };

        let swap = find(&disagg, "swap");
        let Json::Arr(swap_engines) = find(swap, "engines") else {
            panic!("swap engines must be an array");
        };
        assert_eq!(swap_engines.len(), 2, "software and DECA");
        for row in swap_engines {
            let recompute = rate(row, "recompute_rps");
            let tiered = rate(row, "tiered_rps");
            assert!(
                tiered > recompute,
                "tiered ({tiered}) must beat recompute ({recompute})"
            );
            match (recompute > 0.0, try_find(row, "tiered_vs_recompute")) {
                (true, Some(Json::Num(ratio))) => assert!(*ratio > 1.0, "ratio {ratio}"),
                (false, None) => {}
                (present, ratio) => {
                    panic!("recompute>0 = {present} inconsistent with ratio {ratio:?}")
                }
            }
        }
        // The mechanism fired: swaps and promotions happened, and the
        // tiered run prefilled strictly fewer tokens at the same rate.
        let detail = find(swap, "detail");
        assert!(rate(detail, "tier_promotions") > 0.0, "promotions fired");
        assert!(
            rate(detail, "tiered_prefilled_tokens") < rate(detail, "recompute_prefilled_tokens"),
            "promotion must replace prefill compute"
        );
        assert_eq!(rate(detail, "swap_outs"), rate(detail, "swap_ins"));
        match find(swap, "headline") {
            Json::Str(s) => assert!(s.contains("DDR KV offload"), "{s}"),
            other => panic!("headline must be a string, got {other:?}"),
        }

        let pools = find(&disagg, "pools");
        let Json::Arr(pool_engines) = find(pools, "engines") else {
            panic!("pool engines must be an array");
        };
        assert_eq!(pool_engines.len(), 2, "software and DECA");
        for row in pool_engines {
            let colocated = rate(row, "colocated_rps");
            let disagg_rps = rate(row, "disagg_rps");
            assert!(
                disagg_rps > colocated,
                "disagg ({disagg_rps}) must beat colocated ({colocated})"
            );
            let Json::Arr(splits) = find(row, "splits") else {
                panic!("splits must be an array");
            };
            assert_eq!(splits.len(), DISAGG_SOCKETS - 1, "every partition probed");
        }
        match find(pools, "headline") {
            Json::Str(s) => assert!(s.contains("prefill"), "{s}"),
            other => panic!("headline must be a string, got {other:?}"),
        }
    }

    /// The multi-tenant experiment's acceptance shape: DECA sustains a
    /// positive interactive rate with the batch lane un-starved, the
    /// thrashing adapter cache pays for its misses where the roomy one
    /// hits, and the RAG corpus reuses prefix tokens unique-prompt chat
    /// cannot.
    #[test]
    fn multitenant_results_show_per_class_service() {
        let mt = multitenant_results();
        let rate = |row: &Json, key: &str| match find(row, key) {
            Json::Num(v) => *v,
            other => panic!("{key} must be a number, got {other:?}"),
        };

        let capacity = find(&mt, "capacity");
        let Json::Arr(engines) = find(capacity, "engines") else {
            panic!("capacity engines must be an array");
        };
        assert_eq!(engines.len(), 2, "software and DECA");
        let deca = &engines[1];
        assert!(
            rate(deca, "interactive_rps") > 0.0,
            "DECA must sustain some interactive load"
        );
        assert!(
            rate(deca, "batch_goodput_rps") > 0.0,
            "the batch lane must not be starved at the winning rate"
        );
        match find(capacity, "headline") {
            Json::Str(s) => assert!(s.contains("interactive"), "{s}"),
            other => panic!("headline must be a string, got {other:?}"),
        }

        // Adapter cache: no adapters → no loads; thrash evicts and
        // re-loads what the roomy cache keeps resident.
        let cache = find(&mt, "adapter_cache");
        let Json::Arr(rows) = find(cache, "rows") else {
            panic!("adapter rows must be an array");
        };
        assert_eq!(rows.len(), 3);
        assert_eq!(rate(&rows[0], "adapter_loads"), 0.0, "disabled model");
        assert!(
            rate(&rows[1], "adapter_loads") > rate(&rows[2], "adapter_loads"),
            "thrash must re-load what the roomy cache hits"
        );
        assert!(rate(&rows[1], "adapter_evictions") > 0.0);
        assert!(
            rate(&rows[2], "adapter_hit_rate") > rate(&rows[1], "adapter_hit_rate"),
            "the roomy cache must hit more"
        );
        assert!(
            rate(&rows[1], "makespan_s") > rate(&rows[2], "makespan_s"),
            "cache misses are priced as weight traffic, so thrash runs longer"
        );
        let qos = find(cache, "qos");
        assert!(rate(qos, "batch_admitted") > 0.0, "batch lane served");
        assert!(
            rate(qos, "peak_interactive_run") <= TENANT_QOS_AGING as f64,
            "aging must bound the interactive run"
        );

        // Prefix reuse: chat shares nothing; RAG and agents share a lot.
        let prefix = find(&mt, "prefix_reuse");
        let Json::Arr(workloads) = find(prefix, "rows") else {
            panic!("prefix rows must be an array");
        };
        assert_eq!(workloads.len(), 3);
        assert_eq!(rate(&workloads[0], "prefix_hit_rate"), 0.0, "unique chat");
        assert!(
            rate(&workloads[1], "prefix_hit_rate") > 0.5,
            "RAG sessions must reuse their shared documents"
        );
        assert!(
            rate(&workloads[2], "prefix_hit_rate") > rate(&workloads[0], "prefix_hit_rate"),
            "agent transcripts must reuse their own history"
        );
    }

    /// Baseline artifacts written before the multi-tenant counters existed
    /// carry no `qos`/`adapters` fields anywhere — they must still parse,
    /// refresh, and drift-diff cleanly (the artifact schema is
    /// append-only), and the serve-side counters they predate must default
    /// to zero so reports round-trip unchanged.
    #[test]
    fn pre_tenant_artifacts_still_parse_and_refresh() {
        let old = r#"{"schema_version":1,
            "command":"cargo run -p deca-bench --release --bin bench_baseline",
            "experiments":[{"name":"bench_paged","wall_ms":12.5,
                "results":{"completed":12,"rejected":0,"mean_kv_occupancy":0.5}}]}"#;
        let parsed = crate::drift::parse(old).expect("pre-tenant artifacts must parse");
        let lines = crate::drift::diff(
            &crate::drift::strip_volatile(parsed.clone()),
            &crate::drift::strip_volatile(parsed.clone()),
        );
        assert!(lines.is_empty(), "self-diff must be clean: {lines:?}");
        let refreshed =
            refresh_experiment(parsed, "bench_multitenant").expect("append into an old artifact");
        let names = crate::drift::experiment_names(&refreshed);
        assert_eq!(names, ["bench_paged", "bench_multitenant"]);

        // The counters those artifacts predate default to empty, so a
        // report deserialized without them equals one built with them.
        assert_eq!(deca_serve::QosStats::default().admitted(), 0);
        let adapters = deca_serve::AdapterStats::default();
        assert_eq!(adapters.cache_loads, 0);
        assert!(adapters.hit_rate().abs() < f64::EPSILON);
    }

    #[test]
    fn llm_results_cover_both_models_and_render() {
        let llm = llm_latency_results();
        let rendered = llm.render();
        assert!(rendered.contains("Llama2-70B"));
        assert!(rendered.contains("OPT-66B"));
        assert!(rendered.contains("deca_speedup"));
    }
}
