//! Regenerates Figure 4 of the paper on the simulated machine.

fn main() {
    print!("{}", deca_bench::experiments::fig04_roofsurface());
}
