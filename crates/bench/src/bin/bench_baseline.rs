//! Regenerates the committed benchmark baseline.
//!
//! ```text
//! cargo run -p deca-bench --release --bin bench_baseline [output-path]
//! ```
//!
//! Writes `BENCH_baseline.json` (or the given path) containing per-experiment
//! wall times and the modeled Roof-Surface, pipeline and LLM-latency numbers.

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let document = deca_bench::baseline::collect();
    let mut rendered = document.render();
    rendered.push('\n');
    std::fs::write(&path, &rendered).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!(
        "wrote {path} ({} bytes, {} experiments)",
        rendered.len(),
        match &document {
            deca_bench::json::Json::Obj(entries) => entries
                .iter()
                .find(|(k, _)| k == "experiments")
                .map_or(0, |(_, v)| match v {
                    deca_bench::json::Json::Arr(a) => a.len(),
                    _ => 0,
                }),
            _ => 0,
        }
    );
}
