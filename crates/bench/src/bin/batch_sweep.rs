//! Regenerates the batch-size sweep mentioned in §9.1 (speedups for batch
//! sizes up to N=16) on the simulated machine.

fn main() {
    print!("{}", deca_bench::experiments::batch_sweep());
}
