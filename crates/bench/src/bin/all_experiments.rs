//! Regenerates every table and figure of the paper's evaluation in one run.

fn main() {
    print!("{}", deca_bench::experiments::all());
}
