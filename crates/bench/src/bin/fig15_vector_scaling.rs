//! Regenerates Figure 15 of the paper on the simulated machine.

fn main() {
    print!("{}", deca_bench::experiments::fig15_vector_scaling());
}
