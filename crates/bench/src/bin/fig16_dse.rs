//! Regenerates Figure 16 of the paper on the simulated machine.

fn main() {
    print!("{}", deca_bench::experiments::fig16_dse());
}
