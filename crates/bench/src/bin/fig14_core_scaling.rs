//! Regenerates Figure 14 of the paper on the simulated machine.

fn main() {
    print!("{}", deca_bench::experiments::fig14_core_scaling());
}
