//! Regenerates Table 1 of the paper on the simulated machine.

fn main() {
    print!("{}", deca_bench::experiments::tab01_fc_fraction());
}
