//! Regenerates Figure 5 of the paper on the simulated machine.

fn main() {
    print!("{}", deca_bench::experiments::fig05_bord());
}
