//! Regenerates Table 4 of the paper on the simulated machine.

fn main() {
    print!("{}", deca_bench::experiments::tab04_llm_latency());
}
