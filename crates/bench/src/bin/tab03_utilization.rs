//! Regenerates Table 3 of the paper on the simulated machine.

fn main() {
    print!("{}", deca_bench::experiments::tab03_utilization());
}
