//! Regenerates Figure 17 of the paper on the simulated machine.

fn main() {
    print!("{}", deca_bench::experiments::fig17_integration());
}
