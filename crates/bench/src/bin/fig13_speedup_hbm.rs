//! Regenerates Figure 13 of the paper on the simulated machine.

fn main() {
    print!("{}", deca_bench::experiments::fig13_speedup_hbm());
}
