//! Runs the simulator-speed experiment and writes a single-experiment
//! baseline document — CI's `simspeed` job artifact.
//!
//! ```text
//! cargo run -p deca-bench --release --bin bench_simspeed [output-path]
//! ```
//!
//! Simulates the deterministic million-session shared-prefix trace
//! (`SharedPrefixChatSpec::simspeed`) through the event core under
//! continuous, paged, and paged+prefix scheduling, and writes
//! `BENCH_simspeed.json` (or the given path) in the `BENCH_baseline.json`
//! schema so `bench_drift --experiment bench_simspeed` can compare the two
//! directly. Also prints the per-policy sessions/sec to stdout for the CI
//! log.

use deca_bench::json::Json;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_simspeed.json".to_string());
    let document = deca_bench::baseline::single_experiment_document(
        "bench_simspeed",
        deca_bench::baseline::simspeed_results,
    );
    let mut rendered = document.render();
    rendered.push('\n');
    std::fs::write(&path, &rendered).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path} ({} bytes)", rendered.len());

    // Human-readable summary for the CI log.
    for record in deca_bench::drift::select_experiment(&document, "bench_simspeed") {
        let Json::Obj(fields) = &record else { continue };
        let Some(Json::Obj(results)) = fields.iter().find(|(k, _)| k == "results").map(|(_, v)| v)
        else {
            continue;
        };
        let Some(Json::Arr(rows)) = results.iter().find(|(k, _)| k == "rows").map(|(_, v)| v)
        else {
            continue;
        };
        for row in rows {
            let Json::Obj(row) = row else { continue };
            let get = |key: &str| {
                row.iter()
                    .find(|(k, _)| k == key)
                    .map_or(Json::Null, |(_, v)| v.clone())
            };
            println!(
                "  {} sessions={} wall_secs={} sessions/wall-sec={}",
                get("policy").render(),
                get("sessions").render(),
                get("wall_secs").render(),
                get("sessions_per_wall_sec").render(),
            );
        }
    }
}
