//! Regenerates Section 8 area estimate of the paper on the simulated machine.

fn main() {
    print!("{}", deca_bench::experiments::area_report());
}
