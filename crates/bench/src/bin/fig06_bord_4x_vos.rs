//! Regenerates Figure 6 of the paper on the simulated machine.

fn main() {
    print!("{}", deca_bench::experiments::fig06_bord_4x_vos());
}
