//! Regenerates Figure 12 of the paper on the simulated machine.

fn main() {
    print!("{}", deca_bench::experiments::fig12_speedup_ddr());
}
