//! Compares two benchmark baseline artifacts for drift, ignoring
//! wall-clock fields — the CI drift gate.
//!
//! ```text
//! cargo run -p deca-bench --bin bench_drift -- [--experiment NAME] BASELINE CURRENT
//! cargo run -p deca-bench --bin bench_drift -- --write [--experiment NAME] BASELINE
//! cargo run -p deca-bench --bin bench_drift -- --list ARTIFACT...
//! ```
//!
//! Parses both documents, recursively strips every volatile field (any
//! key containing `wall`, ending in `_secs`, or in the legacy
//! machine-dependent set — see `deca_bench::drift`), and diffs the rest
//! exactly. With `--experiment NAME`, only that experiment's records are
//! compared (so a partial artifact like CI's `BENCH_simspeed.json` can be
//! checked against the full committed baseline); a name neither document
//! carries fails with the available names. `--list` prints each
//! artifact's experiment names and exits. `--write` regenerates the
//! committed baseline in place instead of diffing: with `--experiment`
//! only that experiment's records are re-run and replaced (everything
//! else is preserved byte-for-byte), without it the whole document is
//! rebuilt. Exits non-zero with one line per drifted path.

use std::process::ExitCode;

use deca_bench::drift;
use deca_bench::json::Json;

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    drift::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

/// `--list`: one line per artifact naming its experiments.
fn list(paths: &[String]) -> ExitCode {
    for path in paths {
        let names = drift::experiment_names(&load(path));
        if names.is_empty() {
            println!("{path}: no experiments");
        } else {
            println!("{path}: {}", names.join(", "));
        }
    }
    ExitCode::SUCCESS
}

/// The records of experiment `name` in the document at `path`, or a usage
/// error naming what the document does carry.
fn select(doc: &Json, path: &str, name: &str) -> Result<Vec<Json>, String> {
    let records = drift::select_experiment(doc, name);
    if records.is_empty() {
        let available = drift::experiment_names(doc);
        return Err(if available.is_empty() {
            format!("{path} has no experiment {name:?} (document has no experiments)")
        } else {
            format!(
                "{path} has no experiment {name:?} (available: {})",
                available.join(", ")
            )
        });
    }
    Ok(records)
}

/// `--write`: regenerate the baseline artifact at `path` in place — the
/// whole document, or only experiment `name`'s records within it.
fn write(path: &str, name: Option<&str>) -> ExitCode {
    let document = match name {
        Some(name) => match deca_bench::baseline::refresh_experiment(load(path), name) {
            Ok(doc) => doc,
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::from(2);
            }
        },
        None => deca_bench::baseline::collect(),
    };
    if let Err(e) = deca_bench::baseline::write_artifact(std::path::Path::new(path), &document) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::from(2);
    }
    match name {
        Some(name) => println!("rewrote {name} in {path}"),
        None => println!("rewrote {path} (all experiments)"),
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut experiment: Option<String> = None;
    let mut listing = false;
    let mut writing = false;
    let mut paths = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--experiment" {
            experiment = Some(args.next().expect("--experiment needs a name"));
        } else if arg == "--list" {
            listing = true;
        } else if arg == "--write" {
            writing = true;
        } else {
            paths.push(arg);
        }
    }
    if listing {
        if paths.is_empty() {
            eprintln!("usage: bench_drift --list ARTIFACT...");
            return ExitCode::from(2);
        }
        return list(&paths);
    }
    if writing {
        let [path] = paths.as_slice() else {
            eprintln!("usage: bench_drift --write [--experiment NAME] BASELINE");
            return ExitCode::from(2);
        };
        return write(path, experiment.as_deref());
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!("usage: bench_drift [--experiment NAME] BASELINE CURRENT | --list ARTIFACT...");
        return ExitCode::from(2);
    };
    let baseline = load(baseline_path);
    let current = load(current_path);

    let (left, right) = match &experiment {
        Some(name) => {
            let selected = select(&baseline, baseline_path, name)
                .and_then(|l| Ok((l, select(&current, current_path, name)?)));
            match selected {
                Ok((left, right)) => (Json::Arr(left), Json::Arr(right)),
                Err(message) => {
                    eprintln!("{message}");
                    return ExitCode::from(2);
                }
            }
        }
        None => (baseline, current),
    };

    let lines = drift::diff(&drift::strip_volatile(left), &drift::strip_volatile(right));
    if lines.is_empty() {
        match &experiment {
            Some(name) => println!("no drift in {name} (wall fields ignored)"),
            None => println!("no drift (wall fields ignored)"),
        }
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "baseline drift detected ({} path{}):",
        lines.len(),
        if lines.len() == 1 { "" } else { "s" }
    );
    for line in &lines {
        eprintln!("  {line}");
    }
    eprintln!(
        "(if intentional, regenerate with: {})",
        deca_bench::baseline::REGENERATE_COMMAND
    );
    ExitCode::FAILURE
}
