//! Compares two benchmark baseline artifacts for drift, ignoring
//! wall-clock fields — the CI drift gate.
//!
//! ```text
//! cargo run -p deca-bench --bin bench_drift -- [--experiment NAME] BASELINE CURRENT
//! ```
//!
//! Parses both documents, recursively strips every volatile field (any
//! key containing `wall`, ending in `_secs`, or in the legacy
//! machine-dependent set — see `deca_bench::drift`), and diffs the rest
//! exactly. With `--experiment NAME`, only that experiment's records are
//! compared (so a partial artifact like CI's `BENCH_simspeed.json` can be
//! checked against the full committed baseline). Exits non-zero with one
//! line per drifted path.

use std::process::ExitCode;

use deca_bench::drift;
use deca_bench::json::Json;

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    drift::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let mut experiment: Option<String> = None;
    let mut paths = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--experiment" {
            experiment = Some(args.next().expect("--experiment needs a name"));
        } else {
            paths.push(arg);
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!("usage: bench_drift [--experiment NAME] BASELINE CURRENT");
        return ExitCode::from(2);
    };
    let baseline = load(baseline_path);
    let current = load(current_path);

    let (left, right) = match &experiment {
        Some(name) => {
            let left = drift::select_experiment(&baseline, name);
            let right = drift::select_experiment(&current, name);
            assert!(
                !left.is_empty(),
                "{baseline_path} has no experiment {name:?}"
            );
            assert!(
                !right.is_empty(),
                "{current_path} has no experiment {name:?}"
            );
            (Json::Arr(left), Json::Arr(right))
        }
        None => (baseline, current),
    };

    let lines = drift::diff(&drift::strip_volatile(left), &drift::strip_volatile(right));
    if lines.is_empty() {
        match &experiment {
            Some(name) => println!("no drift in {name} (wall fields ignored)"),
            None => println!("no drift (wall fields ignored)"),
        }
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "baseline drift detected ({} path{}):",
        lines.len(),
        if lines.len() == 1 { "" } else { "s" }
    );
    for line in &lines {
        eprintln!("  {line}");
    }
    eprintln!(
        "(if intentional, regenerate with: {})",
        deca_bench::baseline::REGENERATE_COMMAND
    );
    ExitCode::FAILURE
}
