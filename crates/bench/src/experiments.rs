//! One function per paper table/figure. Each returns the formatted text the
//! corresponding binary prints, so the harness is also unit-testable.

use std::fmt::Write as _;

use deca::{area::AreaEstimate, DecaConfig, IntegrationConfig};
use deca_compress::{CompressionScheme, SchemeSet};
use deca_kernels::{
    avx_model::{software_signature, VectorResources},
    CompressedGemmExecutor, Engine,
};
use deca_llm::{InferenceEstimator, LlmModel};
use deca_roofsurface::{
    Bord, DecaVopModel, DesignSpaceExploration, KernelSignature, MachineConfig, RoofSurface,
    Roofline,
};

use crate::report::{fmt_f, fmt_pct, TextTable};

/// The batch sizes used in Table 1.
const TABLE1_BATCHES: [usize; 3] = [1, 4, 16];

fn software_signatures(schemes: &[CompressionScheme]) -> Vec<KernelSignature> {
    schemes.iter().map(software_signature).collect()
}

/// Table 1: contribution of FC-layer GeMMs to the next-token time
/// (Llama2-70B, uncompressed BF16, DDR and HBM, 32/128 input tokens).
#[must_use]
pub fn tab01_fc_fraction() -> String {
    let mut table = TextTable::new(
        "Table 1 — FC GeMM share of Llama2-70B next-token time (BF16, software)",
        &["Memory", "Input tokens", "N=1", "N=4", "N=16"],
    );
    for machine in [MachineConfig::spr_ddr(), MachineConfig::spr_hbm()] {
        let estimator = InferenceEstimator::new(machine.clone());
        for input_tokens in [32usize, 128] {
            let mut cells = vec![machine.name.clone(), input_tokens.to_string()];
            for batch in TABLE1_BATCHES {
                let report = estimator.next_token(
                    &LlmModel::llama2_70b(),
                    &CompressionScheme::bf16_dense(),
                    Engine::software(),
                    batch,
                    input_tokens,
                );
                cells.push(format!("{:.1}%", report.fc_fraction() * 100.0));
            }
            table.add_row(cells);
        }
    }
    table.to_string()
}

/// Figure 3: traditional rooflines for a large FC GeMM at N=4 on DDR and
/// HBM — optimal (roofline) versus observed (simulated software kernel).
#[must_use]
pub fn fig03_roofline() -> String {
    let mut out = String::new();
    let schemes: Vec<CompressionScheme> = std::iter::once(CompressionScheme::bf16_dense())
        .chain(SchemeSet::paper_evaluation())
        .collect();
    for machine in [MachineConfig::spr_ddr(), MachineConfig::spr_hbm()] {
        let roofline = Roofline::new(&machine);
        let executor = CompressedGemmExecutor::new(machine.clone());
        let mut table = TextTable::new(
            format!("Figure 3 — roofline, {}, N=4", machine.name),
            &["kernel", "AI (FLOP/B)", "Optimal TF", "Observed TF", "gap"],
        );
        for scheme in &schemes {
            let ai = scheme.flops_per_byte(4);
            let optimal = roofline.attainable_flops(ai, 4) / 1e12;
            let observed = executor.run(scheme, Engine::software(), 4).tflops;
            table.add_row(vec![
                scheme.label(),
                fmt_f(ai, 2),
                fmt_f(optimal, 2),
                fmt_f(observed, 2),
                format!("{:.2}x", optimal / observed),
            ]);
        }
        out.push_str(&table.to_string());
        out.push('\n');
    }
    out
}

/// Figure 4: the 3D Roof-Surface (region census of the sampled surface) and
/// the R-L vs R-S vs simulated-performance table for HBM at N=4.
#[must_use]
pub fn fig04_roofsurface() -> String {
    let machine = MachineConfig::spr_hbm();
    let surface = RoofSurface::for_cpu(&machine);
    let roofline = Roofline::new(&machine);
    let executor = CompressedGemmExecutor::new(machine.clone());

    let samples = surface.sample_grid((0.001, 0.02), (0.001, 0.05), 48, 4);
    let census = |bound| samples.iter().filter(|s| s.bound == bound).count();
    let mut out = format!(
        "=== Figure 4a — Roof-Surface sample grid (HBM, N=4, 48x48 points) ===\n\
         MEM-bound region: {} points, VEC-bound region: {} points, MTX-bound region: {} points\n\
         peak of surface: {:.1} TFLOPS\n\n",
        census(deca_roofsurface::BoundingFactor::Memory),
        census(deca_roofsurface::BoundingFactor::Vector),
        census(deca_roofsurface::BoundingFactor::Matrix),
        samples.iter().map(|s| s.flops).fold(0.0, f64::max) / 1e12,
    );

    let mut table = TextTable::new(
        "Figure 4b — optimal TFLOPS: roofline (R-L) vs Roof-Surface (R-S) vs simulated (Real), HBM, N=4",
        &["kernel", "R-L", "R-S", "Real", "bound"],
    );
    let mut schemes = vec![CompressionScheme::mxfp4(), CompressionScheme::bf8_dense()];
    schemes.extend([0.5, 0.3, 0.2, 0.1, 0.05].map(CompressionScheme::bf8_sparse));
    schemes.extend([0.5, 0.3, 0.2, 0.1, 0.05].map(CompressionScheme::bf16_sparse));
    for scheme in schemes {
        let sig = software_signature(&scheme);
        let rl = roofline.attainable_flops(scheme.flops_per_byte(4), 4) / 1e12;
        let rs = surface.flops(&sig, 4) / 1e12;
        let real = executor.run(&scheme, Engine::software(), 4).tflops;
        table.add_row(vec![
            scheme.label(),
            fmt_f(rl, 1),
            fmt_f(rs, 1),
            fmt_f(real, 1),
            surface.bounding_factor(&sig).to_string(),
        ]);
    }
    out.push_str(&table.to_string());
    out
}

fn bord_report(title: &str, machine: &MachineConfig) -> String {
    let bord = Bord::new(RoofSurface::for_cpu(machine));
    let sigs = software_signatures(&SchemeSet::paper_evaluation());
    let points = bord.place_all(&sigs);
    let mut table = TextTable::new(title, &["kernel", "AIX_M", "AIX_V", "region"]);
    for p in &points {
        table.add_row(vec![
            p.label.clone(),
            fmt_f(p.aix_m, 5),
            fmt_f(p.aix_v, 5),
            p.region.to_string(),
        ]);
    }
    format!(
        "{}\nregion boundaries: MEM/VEC slope = {:.3}, MEM/MTX at AIX_M = {:.5}, VEC/MTX at AIX_V = {:.5}\n\
         VEC-bound fraction: {}\n{}\n",
        table,
        bord.mem_vec_slope(),
        bord.mem_mtx_boundary(),
        bord.vec_mtx_boundary(),
        fmt_pct(bord.vec_bound_fraction(&sigs)),
        bord.render_ascii(&points, 64, 20),
    )
}

/// Figure 5: the 2D BORD for HBM and DDR with the software kernels placed
/// on it.
#[must_use]
pub fn fig05_bord() -> String {
    let mut out = bord_report(
        "Figure 5a — BORD, SPR-HBM (software kernels)",
        &MachineConfig::spr_hbm(),
    );
    out.push('\n');
    out.push_str(&bord_report(
        "Figure 5b — BORD, SPR-DDR (software kernels)",
        &MachineConfig::spr_ddr(),
    ));
    out
}

/// Figure 6: the BORD for the HBM machine with 4× the vector throughput.
#[must_use]
pub fn fig06_bord_4x_vos() -> String {
    bord_report(
        "Figure 6 — BORD, SPR-HBM with 4x VOS (software kernels)",
        &MachineConfig::spr_hbm().with_vector_scaling(4),
    )
}

fn speedup_figure(title: &str, machine: MachineConfig) -> String {
    let executor = CompressedGemmExecutor::new(machine);
    let baseline = executor.uncompressed_baseline(1);
    let mut table = TextTable::new(title, &["kernel", "Software-only", "DECA", "Optimal"]);
    for scheme in SchemeSet::paper_evaluation() {
        let sw = executor.run(&scheme, Engine::software(), 1);
        let deca = executor.run(&scheme, Engine::deca_default(), 1);
        let optimal = executor.optimal_tflops(&scheme, 1) / baseline.tflops;
        table.add_row(vec![
            scheme.label(),
            format!("{:.2}x", sw.speedup_over(&baseline)),
            format!("{:.2}x", deca.speedup_over(&baseline)),
            format!("{:.2}x", optimal),
        ]);
    }
    table.to_string()
}

/// Figure 12: compressed-GeMM speedups over uncompressed BF16 on DDR, N=1.
#[must_use]
pub fn fig12_speedup_ddr() -> String {
    speedup_figure(
        "Figure 12 — speedup vs uncompressed BF16, DDR, N=1",
        MachineConfig::spr_ddr(),
    )
}

/// Figure 13: compressed-GeMM speedups over uncompressed BF16 on HBM, N=1.
#[must_use]
pub fn fig13_speedup_hbm() -> String {
    speedup_figure(
        "Figure 13 — speedup vs uncompressed BF16, HBM, N=1",
        MachineConfig::spr_hbm(),
    )
}

/// Figure 14: average TFLOPS across all compression schemes versus the
/// number of active cores (DDR, N=4), software versus DECA-augmented cores.
#[must_use]
pub fn fig14_core_scaling() -> String {
    let mut table = TextTable::new(
        "Figure 14 — average TFLOPS across compressions vs active core count, DDR, N=4",
        &["cores", "Software", "DECA"],
    );
    let schemes = SchemeSet::paper_evaluation();
    for cores in [8usize, 16, 24, 32, 40, 48, 56] {
        let machine = MachineConfig::spr_ddr().with_cores(cores);
        let executor = CompressedGemmExecutor::new(machine);
        let avg = |engine: fn() -> Engine| {
            schemes
                .iter()
                .map(|s| executor.run(s, engine(), 4).tflops)
                .sum::<f64>()
                / schemes.len() as f64
        };
        table.add_row(vec![
            cores.to_string(),
            fmt_f(avg(Engine::software), 2),
            fmt_f(avg(Engine::deca_default), 2),
        ]);
    }
    table.to_string()
}

/// Table 3: component utilization for Q8 at several densities (N=1, HBM),
/// software-only versus DECA.
#[must_use]
pub fn tab03_utilization() -> String {
    let executor = CompressedGemmExecutor::new(MachineConfig::spr_hbm());
    let mut table = TextTable::new(
        "Table 3 — component utilization, Q8, N=1, HBM",
        &[
            "density",
            "SW:MEM",
            "SW:TMUL",
            "SW:AVX",
            "DECA:MEM",
            "DECA:TMUL",
            "DECA:DECA",
        ],
    );
    for density in [1.0, 0.5, 0.2, 0.05] {
        let scheme = if density < 1.0 {
            CompressionScheme::bf8_sparse(density)
        } else {
            CompressionScheme::bf8_dense()
        };
        let sw = executor.run(&scheme, Engine::software(), 1).stats;
        let deca = executor.run(&scheme, Engine::deca_default(), 1).stats;
        table.add_row(vec![
            format!("{:.0}%", density * 100.0),
            fmt_pct(sw.memory_utilization()),
            fmt_pct(sw.tmul_utilization()),
            fmt_pct(sw.decompress_utilization()),
            fmt_pct(deca.memory_utilization()),
            fmt_pct(deca.tmul_utilization()),
            fmt_pct(deca.decompress_utilization()),
        ]);
    }
    table.to_string()
}

/// Figure 15: DECA versus conventional vector-resource scaling
/// (4× more AVX units, 4× wider AVX units), HBM, N=1.
#[must_use]
pub fn fig15_vector_scaling() -> String {
    let executor = CompressedGemmExecutor::new(MachineConfig::spr_hbm());
    let baseline = executor.uncompressed_baseline(1);
    let mut table = TextTable::new(
        "Figure 15 — DECA vs traditional vector scaling, HBM, N=1 (speedup vs uncompressed BF16)",
        &["kernel", "More AVX Units", "Wider AVX Units", "DECA"],
    );
    for scheme in SchemeSet::paper_evaluation() {
        let more = executor.run(
            &scheme,
            Engine::software_with(VectorResources::more_avx_units()),
            1,
        );
        let wider = executor.run(
            &scheme,
            Engine::software_with(VectorResources::wider_avx_units()),
            1,
        );
        let deca = executor.run(&scheme, Engine::deca_default(), 1);
        table.add_row(vec![
            scheme.label(),
            format!("{:.2}x", more.speedup_over(&baseline)),
            format!("{:.2}x", wider.speedup_over(&baseline)),
            format!("{:.2}x", deca.speedup_over(&baseline)),
        ]);
    }
    table.to_string()
}

/// Figure 16 / §9.2: design-space exploration over `{W, L}` — BORD regions
/// for the no-DECA CPU and for under/best/over-provisioned DECAs, the
/// analytic recommendation, and the simulated performance ratios quoted in
/// the paper.
#[must_use]
pub fn fig16_dse() -> String {
    let machine = MachineConfig::spr_hbm();
    let schemes = SchemeSet::paper_evaluation();
    let dse = DesignSpaceExploration::new(machine.clone(), schemes.clone(), 4);

    let mut out = String::new();
    // (a) the CPU (no DECA) BORD: how many kernels are VEC-bound.
    let cpu_bord = Bord::new(RoofSurface::for_cpu(&machine));
    let cpu_sigs = software_signatures(&schemes);
    let _ = write!(
        out,
        "=== Figure 16a — no DECA (CPU AVX): {} of {} kernels VEC-bound ===\n\n",
        cpu_sigs
            .iter()
            .filter(|s| cpu_bord.classify(s) == deca_roofsurface::BoundingFactor::Vector)
            .count(),
        cpu_sigs.len()
    );

    let mut table = TextTable::new(
        "Figure 16b — kernels still VEC-bound for different DECA sizings",
        &[
            "sizing",
            "cost proxy (B)",
            "VEC-bound kernels",
            "min TFLOPS",
            "geomean TFLOPS",
        ],
    );
    for model in [
        DecaVopModel::UNDERPROVISIONED,
        DecaVopModel::BASELINE,
        DecaVopModel::OVERPROVISIONED,
    ] {
        let outcome = dse.evaluate(model);
        table.add_row(vec![
            model.to_string(),
            outcome.point.cost.to_string(),
            if outcome.vec_bound_kernels.is_empty() {
                "none".to_string()
            } else {
                outcome.vec_bound_kernels.join(",")
            },
            fmt_f(outcome.min_tflops, 2),
            fmt_f(outcome.geomean_tflops, 2),
        ]);
    }
    out.push_str(&table.to_string());

    let recommended = dse
        .recommend(&DesignSpaceExploration::default_grid())
        .expect("a qualifying design exists");
    let _ = write!(
        out,
        "\nanalytic recommendation: {} (cheapest sizing with no VEC-bound kernel)\n",
        recommended.point.model
    );

    // Simulated validation of the three sizings (geometric mean across the
    // Q8 density sweep, the schemes most sensitive to {W, L}).
    let executor = CompressedGemmExecutor::new(machine);
    let simulated = |config: DecaConfig| {
        let sweep = SchemeSet::q8_density_sweep();
        let product: f64 = sweep
            .iter()
            .map(|s| {
                executor
                    .run(s, Engine::deca(config, IntegrationConfig::full()), 4)
                    .tflops
                    .ln()
            })
            .sum();
        (product / sweep.len() as f64).exp()
    };
    let under = simulated(DecaConfig::underprovisioned());
    let best = simulated(DecaConfig::baseline());
    let over = simulated(DecaConfig::overprovisioned());
    let _ = write!(
        out,
        "simulated geomean TFLOPS (Q8 sweep, N=4): under {:.2}, best {:.2}, over {:.2}\n\
         best / under = {:.2}x (paper: 2x)   over / best = {:.3}x (paper: < 1.03x)\n",
        under,
        best,
        over,
        best / under,
        over / best
    );
    out
}

/// Figure 17: the DECA integration ablation (Q8 densities, HBM, N=4),
/// speedup of each integration step over the base configuration.
#[must_use]
pub fn fig17_integration() -> String {
    let executor = CompressedGemmExecutor::new(MachineConfig::spr_hbm());
    let ladder = IntegrationConfig::ablation_ladder();
    let headers: Vec<&str> = std::iter::once("density")
        .chain(ladder.iter().map(|(name, _)| *name))
        .collect();
    let mut table = TextTable::new(
        "Figure 17 — DECA integration features, Q8, HBM, N=4 (speedup over base config)",
        &headers,
    );
    for density in [1.0, 0.5, 0.3, 0.2, 0.1, 0.05] {
        let scheme = if density < 1.0 {
            CompressionScheme::bf8_sparse(density)
        } else {
            CompressionScheme::bf8_dense()
        };
        let base = executor
            .run(
                &scheme,
                Engine::deca(DecaConfig::baseline(), IntegrationConfig::base()),
                4,
            )
            .tflops;
        let mut cells = vec![format!("{:.0}%", density * 100.0)];
        for (_, integration) in &ladder {
            let tflops = executor
                .run(
                    &scheme,
                    Engine::deca(DecaConfig::baseline(), *integration),
                    4,
                )
                .tflops;
            cells.push(format!("{:.2}x", tflops / base));
        }
        table.add_row(cells);
    }
    table.to_string()
}

/// Table 4: Llama2-70B / OPT-66B next-token latency (ms) on HBM for software
/// versus DECA, batch sizes 1 and 16.
#[must_use]
pub fn tab04_llm_latency() -> String {
    let estimator = InferenceEstimator::new(MachineConfig::spr_hbm());
    let schemes = SchemeSet::llm_evaluation();
    let mut out = String::new();
    for model in [LlmModel::llama2_70b(), LlmModel::opt_66b()] {
        let mut table = TextTable::new(
            format!(
                "Table 4 — {} next-token latency (ms), HBM, 128 input tokens",
                model.name()
            ),
            &[
                "engine",
                "BF16 (N=1)",
                "Q4 (N=1)",
                "Q8_20% (N=1)",
                "Q8_5% (N=1)",
                "BF16 (N=16)",
                "Q4 (N=16)",
                "Q8_20% (N=16)",
                "Q8_5% (N=16)",
            ],
        );
        for (engine_name, engine) in [("SW", Engine::software()), ("DECA", Engine::deca_default())]
        {
            let mut cells = vec![engine_name.to_string()];
            for batch in [1usize, 16] {
                for scheme in &schemes {
                    if engine_name == "DECA" && scheme.is_uncompressed() {
                        // The uncompressed model needs no decompression; DECA
                        // does not apply (the paper leaves this cell empty).
                        cells.push("-".to_string());
                        continue;
                    }
                    let report = estimator.next_token(&model, scheme, engine, batch, 128);
                    cells.push(fmt_f(report.total_ms(), 1));
                }
            }
            table.add_row(cells);
        }
        out.push_str(&table.to_string());
        out.push('\n');
    }
    out
}

/// Batch-size sweep (§9.1: "We repeated this analysis for batch sizes of up
/// to N=16 and observed similar results"): DECA-over-software speedup on HBM
/// for N = 1, 4, 16 across the evaluated schemes.
#[must_use]
pub fn batch_sweep() -> String {
    let executor = CompressedGemmExecutor::new(MachineConfig::spr_hbm());
    let mut table = TextTable::new(
        "Batch sweep — DECA speedup over the software kernel, HBM",
        &["kernel", "N=1", "N=4", "N=16"],
    );
    for scheme in SchemeSet::paper_evaluation() {
        let mut cells = vec![scheme.label()];
        for batch in [1usize, 4, 16] {
            let sw = executor.run(&scheme, Engine::software(), batch);
            let deca = executor.run(&scheme, Engine::deca_default(), batch);
            cells.push(format!("{:.2}x", deca.speedup_over(&sw)));
        }
        table.add_row(cells);
    }
    table.to_string()
}

/// §8 area estimate: per-PE breakdown, 56-PE total and die fraction.
#[must_use]
pub fn area_report() -> String {
    let mut table = TextTable::new(
        "DECA area model (7 nm)",
        &[
            "sizing",
            "per-PE mm2",
            "56 PEs mm2",
            "% of 1600 mm2 die",
            "buffers",
            "LUT array",
            "datapath",
        ],
    );
    for (name, config) in [
        ("{W=8,L=4}", DecaConfig::underprovisioned()),
        ("{W=32,L=8} (baseline)", DecaConfig::baseline()),
        ("{W=64,L=64}", DecaConfig::overprovisioned()),
    ] {
        let est = AreaEstimate::for_config(&config);
        let (b, l, d) = est.breakdown();
        table.add_row(vec![
            name.to_string(),
            fmt_f(est.per_pe_mm2(), 4),
            fmt_f(est.total_mm2(56), 2),
            format!(
                "{:.3}%",
                est.fraction_of_die(56, deca::area::SPR_DIE_MM2) * 100.0
            ),
            fmt_pct(b),
            fmt_pct(l),
            fmt_pct(d),
        ]);
    }
    table.to_string()
}

/// Every experiment, concatenated (the `all_experiments` binary).
#[must_use]
pub fn all() -> String {
    [
        tab01_fc_fraction(),
        fig03_roofline(),
        fig04_roofsurface(),
        fig05_bord(),
        fig06_bord_4x_vos(),
        fig12_speedup_ddr(),
        fig13_speedup_hbm(),
        fig14_core_scaling(),
        tab03_utilization(),
        fig15_vector_scaling(),
        fig16_dse(),
        fig17_integration(),
        tab04_llm_latency(),
        batch_sweep(),
        area_report(),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_report_has_all_rows() {
        let text = tab01_fc_fraction();
        assert!(text.contains("SPR-DDR"));
        assert!(text.contains("SPR-HBM"));
        assert!(text.matches('%').count() >= 12);
    }

    #[test]
    fn fig04_reports_all_twelve_kernels() {
        let text = fig04_roofsurface();
        for label in ["Q4", "Q8", "Q8_5%", "Q16_5%", "Q16_50%"] {
            assert!(text.contains(label), "missing {label}");
        }
        assert!(text.contains("VEC"));
    }

    #[test]
    fn fig13_shows_deca_column() {
        let text = fig13_speedup_hbm();
        assert!(text.contains("DECA"));
        assert!(text.contains("Q8_5%"));
        assert!(text.contains('x'));
    }

    #[test]
    fn fig16_recommends_the_baseline() {
        let text = fig16_dse();
        assert!(text.contains("{W=32, L=8}"));
        assert!(text.contains("analytic recommendation"));
    }

    #[test]
    fn fig17_has_the_full_ladder() {
        let text = fig17_integration();
        for step in [
            "Base",
            "+Reads L2",
            "+DECA prefetcher",
            "+TOut Regs",
            "+TEPL (DECA)",
        ] {
            assert!(text.contains(step), "missing {step}");
        }
    }

    #[test]
    fn tab04_contains_both_models_and_dashes_for_uncompressed_deca() {
        let text = tab04_llm_latency();
        assert!(text.contains("Llama2-70B"));
        assert!(text.contains("OPT-66B"));
        assert!(text.contains('-'));
    }

    #[test]
    fn batch_sweep_speedups_are_similar_across_batches() {
        // §9.1: the speedup picture at N=16 resembles N=1.
        let text = batch_sweep();
        assert!(text.contains("N=16"));
        assert!(text.contains("Q8_5%"));
    }

    #[test]
    fn area_report_mentions_the_baseline_numbers() {
        let text = area_report();
        assert!(text.contains("2.51") || text.contains("2.50") || text.contains("2.52"));
        assert!(text.contains("baseline"));
    }
}
