//! Small plain-text reporting helpers shared by the experiment binaries.

/// A fixed-column text table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; extra/missing cells versus the header count are
    /// allowed but render unpadded.
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    fn column_widths(&self) -> Vec<usize> {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        (0..columns)
            .map(|c| {
                std::iter::once(self.headers.get(c).map_or(0, String::len))
                    .chain(self.rows.iter().map(|r| r.get(c).map_or(0, String::len)))
                    .max()
                    .unwrap_or(0)
            })
            .collect()
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let widths = self.column_widths();
        writeln!(f, "=== {} ===", self.title)?;
        let render_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, cell)| {
                    format!(
                        "{:>width$}",
                        cell,
                        width = widths.get(i).copied().unwrap_or(0)
                    )
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", render_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1))
        )?;
        for row in &self.rows {
            writeln!(f, "{}", render_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float with the given number of decimals.
#[must_use]
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a ratio as a percentage with no decimals.
#[must_use]
pub fn fmt_pct(value: f64) -> String {
    format!("{:.0}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["scheme", "TFLOPS"]);
        t.add_row(vec!["Q8_20%".to_string(), fmt_f(std::f64::consts::PI, 2)]);
        t.add_row(vec!["Q4".to_string(), fmt_f(12.0, 2)]);
        let text = t.to_string();
        assert!(text.contains("=== Demo ==="));
        assert!(text.contains("Q8_20%"));
        assert!(text.contains("3.14"));
        assert_eq!(t.row_count(), 2);
        // Columns are right-aligned to the same width.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(1.23456, 3), "1.235");
        assert_eq!(fmt_pct(0.934), "93%");
    }
}
