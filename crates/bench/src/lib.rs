//! Experiment harness for the DECA reproduction.
//!
//! Each table and figure of the paper's evaluation has a function in
//! [`experiments`] (and a matching binary under `src/bin/`) that regenerates
//! the same rows/series on the simulated machine. `DESIGN.md` maps paper
//! artifacts to these functions; `EXPERIMENTS.md` records paper-vs-measured
//! values.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p deca-bench --release --bin all_experiments
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod drift;
pub mod experiments;
pub mod json;
pub mod report;

pub use report::TextTable;
