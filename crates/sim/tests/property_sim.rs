//! Property-based tests of the tile-pipeline simulator.

use deca_roofsurface::MachineConfig;
use deca_sim::{
    CacheConfig, GemmSimulation, InvocationModel, MulticoreGemmSimulation, PrefetchConfig,
    TileExecModel,
};
use proptest::prelude::*;

fn arbitrary_model() -> impl Strategy<Value = TileExecModel> {
    (
        32.0f64..1100.0, // bytes per tile
        4.0f64..200.0,   // decompress cycles
        1.0f64..60.0,    // core cycles
        0.0f64..80.0,    // post latency
        prop::bool::ANY, // serialized?
        0usize..=16,     // prefetch distance (0 = none)
    )
        .prop_map(
            |(bytes, decomp, core, post, serialized, distance)| TileExecModel {
                bytes_per_tile: bytes,
                decompress_cycles_per_tile: decomp,
                core_cycles_per_tile: core,
                tmul_cycles_per_tile: 16.0,
                exposed_pre_latency: 0.0,
                exposed_post_latency: post,
                invocation: if serialized {
                    InvocationModel::Serialized {
                        overhead_cycles: 36.0,
                    }
                } else {
                    InvocationModel::Overlapped
                },
                buffering_depth: 2,
                prefetch: if distance == 0 {
                    PrefetchConfig::none()
                } else {
                    PrefetchConfig::stream(distance)
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Simulated throughput never beats the per-core resource bound, and the
    /// reported utilizations are valid fractions.
    #[test]
    fn throughput_respects_resource_bounds(model in arbitrary_model()) {
        let machine = MachineConfig::spr_hbm();
        let sim = GemmSimulation::new(machine.clone(), CacheConfig::spr());
        let stats = sim.run(&model, 600);
        let per_core_bpc = machine.memory_bandwidth_bytes_per_sec()
            / machine.frequency_hz()
            / machine.cores as f64;
        let bound = model.steady_state_bound_cycles(per_core_bpc);
        prop_assert!(stats.cycles_per_tile() >= bound * 0.999,
            "cycles/tile {} below bound {}", stats.cycles_per_tile(), bound);
        for u in [
            stats.memory_utilization(),
            stats.tmul_utilization(),
            stats.decompress_utilization(),
            stats.core_issue_utilization(),
        ] {
            prop_assert!((0.0..=1.0).contains(&u));
        }
        prop_assert!(stats.tflops(&machine, 1) > 0.0);
    }

    /// Total cycles grow (weakly) monotonically with the number of tiles.
    #[test]
    fn cycles_monotone_in_tiles(model in arbitrary_model(), tiles in 10usize..200) {
        let sim = GemmSimulation::new(MachineConfig::spr_hbm(), CacheConfig::spr());
        let short = sim.run(&model, tiles).total_cycles;
        let long = sim.run(&model, tiles * 2).total_cycles;
        prop_assert!(long >= short);
        // Doubling the work costs at most (roughly) double plus start-up.
        prop_assert!(long <= short * 2.0 + 2000.0);
    }

    /// Adding exposed post-latency, switching to serialized invocation or
    /// dropping the prefetcher never makes the kernel faster.
    #[test]
    fn slowdowns_are_monotone(model in arbitrary_model()) {
        let sim = GemmSimulation::new(MachineConfig::spr_hbm(), CacheConfig::spr());
        let base = sim.run(&model, 400).total_cycles;
        let mut worse_latency = model.clone();
        worse_latency.exposed_post_latency += 25.0;
        prop_assert!(sim.run(&worse_latency, 400).total_cycles >= base - 1e-6);
        let mut serialized = model.clone();
        serialized.invocation = InvocationModel::Serialized { overhead_cycles: 36.0 };
        prop_assert!(sim.run(&serialized, 400).total_cycles >= base - 1e-6);
        let mut no_prefetch = model;
        no_prefetch.prefetch = PrefetchConfig::none();
        prop_assert!(sim.run(&no_prefetch, 400).total_cycles >= base - 1e-6);
    }

    /// The explicit multi-core simulation also respects the per-core
    /// steady-state resource bound and conserves the workload: every
    /// assigned tile is processed and the transferred bytes match.
    /// (Close agreement with the fair-share model on the evaluation-relevant
    /// kernel models is asserted by the unit tests in `multicore.rs`; for
    /// arbitrary latency-dominated models the two legitimately differ in how
    /// burstiness interacts with the shared controller.)
    #[test]
    fn multicore_is_bounded_and_conserves_work(model in arbitrary_model()) {
        let machine = MachineConfig::spr_hbm();
        let multi = MulticoreGemmSimulation::new(machine.clone(), CacheConfig::spr());
        let tiles = 400usize;
        let stats = multi.run(&model, tiles);
        let per_core_bpc = machine.memory_bandwidth_bytes_per_sec()
            / machine.frequency_hz()
            / machine.cores as f64;
        let bound = model.steady_state_bound_cycles(per_core_bpc);
        prop_assert!(stats.cycles_per_tile() >= bound * 0.999);
        prop_assert_eq!(stats.tiles_processed, tiles * machine.cores);
        let expected_bytes = model.bytes_per_tile * tiles as f64;
        prop_assert!((stats.bytes_per_core - expected_bytes).abs() / expected_bytes < 1e-9);
    }
}
