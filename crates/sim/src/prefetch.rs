//! Prefetcher models.
//!
//! A stream prefetcher's only job in this workload is to issue tile fetches
//! ahead of the consumer so the DRAM latency is off the critical path. Its
//! effectiveness is captured by how many tiles ahead it can run (bounded by
//! MSHRs / queue capacity) and where it leaves the data (L2 for the L2
//! stream prefetcher and the DECA prefetcher; nowhere for no prefetching).

/// Which prefetcher, if any, covers the compressed-tile stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PrefetchKind {
    /// No prefetching: every tile fetch exposes the full demand-miss
    /// latency.
    None,
    /// The regular L2 hardware stream prefetcher.
    L2Stream,
    /// DECA's integrated prefetcher, which tracks the tile metadata stream
    /// directly and keeps L2 MSHR occupancy high (§6.1).
    DecaIntegrated,
}

/// Prefetch behaviour for a tile stream.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PrefetchConfig {
    /// Which engine issues the prefetches.
    pub kind: PrefetchKind,
    /// How many tiles ahead of the consumer the prefetcher runs.
    pub distance_tiles: f64,
    /// Fraction of the stream the prefetcher successfully covers (accounts
    /// for stream start-up, page boundaries and metadata irregularity).
    pub coverage: f64,
}

impl PrefetchConfig {
    /// No prefetching at all.
    #[must_use]
    pub fn none() -> Self {
        PrefetchConfig {
            kind: PrefetchKind::None,
            distance_tiles: 0.0,
            coverage: 0.0,
        }
    }

    /// A generic stream prefetcher running `distance` tiles ahead with the
    /// L2 prefetcher's typical ~85 % coverage on strided streams.
    #[must_use]
    pub fn stream(distance: usize) -> Self {
        PrefetchConfig {
            kind: PrefetchKind::L2Stream,
            distance_tiles: distance as f64,
            coverage: 0.85,
        }
    }

    /// A stream prefetcher with explicit coverage — used for streams the
    /// stock L2 prefetcher tracks poorly, such as DECA's three interleaved
    /// tile structures with data-dependent lengths.
    #[must_use]
    pub fn stream_with_coverage(distance: usize, coverage: f64) -> Self {
        PrefetchConfig {
            kind: PrefetchKind::L2Stream,
            distance_tiles: distance as f64,
            coverage: coverage.clamp(0.0, 1.0),
        }
    }

    /// DECA's integrated prefetcher: it knows the exact addresses and
    /// lengths of the three tile structures from the metadata, so it covers
    /// nearly the whole stream and sustains a deeper distance (§6.1,
    /// "aggressiveness is dynamically adjusted so that a high L2 MSHR
    /// occupancy is preserved").
    #[must_use]
    pub fn deca(distance: usize) -> Self {
        PrefetchConfig {
            kind: PrefetchKind::DecaIntegrated,
            distance_tiles: distance as f64,
            coverage: 0.97,
        }
    }

    /// Whether any prefetching happens.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.kind != PrefetchKind::None && self.distance_tiles > 0.0 && self.coverage > 0.0
    }

    /// The average demand latency actually exposed to the consumer, given
    /// the full miss latency and the latency of the level the prefetcher
    /// fills (usually the L2): covered accesses pay the hit latency, the
    /// rest pay the miss latency.
    #[must_use]
    pub fn exposed_latency(&self, miss_latency: f64, hit_latency: f64) -> f64 {
        if !self.is_enabled() {
            return miss_latency;
        }
        self.coverage * hit_latency + (1.0 - self.coverage) * miss_latency
    }

    /// Clamps the prefetch distance to what the MSHR budget allows for a
    /// given number of cache lines per tile.
    #[must_use]
    pub fn clamped_to_mshrs(mut self, mshrs: usize, lines_per_tile: usize) -> Self {
        if lines_per_tile == 0 {
            return self;
        }
        let max_tiles_in_flight = (mshrs / lines_per_tile).max(1) as f64;
        self.distance_tiles = self.distance_tiles.min(max_tiles_in_flight);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_exposes_full_latency() {
        let p = PrefetchConfig::none();
        assert!(!p.is_enabled());
        assert_eq!(p.exposed_latency(356.0, 16.0), 356.0);
    }

    #[test]
    fn stream_prefetcher_hides_most_latency() {
        let p = PrefetchConfig::stream(8);
        assert!(p.is_enabled());
        let exposed = p.exposed_latency(356.0, 16.0);
        assert!(exposed < 0.25 * 356.0, "exposed {exposed}");
        assert!(exposed > 16.0);
    }

    #[test]
    fn deca_prefetcher_hides_more_than_l2_stream() {
        let l2 = PrefetchConfig::stream(8).exposed_latency(356.0, 16.0);
        let deca = PrefetchConfig::deca(8).exposed_latency(356.0, 16.0);
        assert!(deca < l2);
    }

    #[test]
    fn mshr_clamp_limits_distance() {
        // 16 lines per (dense BF16) tile, 48 MSHRs -> at most 3 tiles ahead.
        let p = PrefetchConfig::deca(16).clamped_to_mshrs(48, 16);
        assert_eq!(p.distance_tiles, 3.0);
        // Small tiles (2 lines) are not limited by 48 MSHRs at distance 16.
        let p2 = PrefetchConfig::deca(16).clamped_to_mshrs(48, 2);
        assert_eq!(p2.distance_tiles, 16.0);
        // Degenerate line count leaves the config untouched.
        let p3 = PrefetchConfig::deca(16).clamped_to_mshrs(48, 0);
        assert_eq!(p3.distance_tiles, 16.0);
    }
}
