//! Memory-trace generation for compressed weight streams.
//!
//! The tile executor in [`crate::GemmSimulation`] normally replays the
//! *expected* compressed tile size of a scheme — an average. Real weight
//! matrices are lumpy: per-tile density varies, so the bytes each tile pulls
//! from memory vary too. This module walks an actual [`CompressedMatrix`]
//! through a streaming [`DecompressEngine`] (the zero-copy
//! `decompress_tile_into` API, one reused tile buffer and scratch for the
//! whole sweep) and records, per tile, exactly which memory structures a
//! DECA Loader would fetch — the nonzero payload, the bitmask and the scale
//! factors (§5.2). The resulting [`MemoryTrace`] can then drive a
//! trace-based simulation via [`crate::GemmSimulation::run_trace`], where
//! every tile pays for its own bytes instead of the scheme average.
//!
//! Streaming the tiles through the engine while tracing is not incidental:
//! it validates every tile's consistency on the way (corrupt tiles abort the
//! trace) and pins the trace to a named functional backend.

use deca_compress::{
    CompressError, CompressedMatrix, DecompressEngine, DecompressScratch, DenseTile,
};

/// The memory footprint of one compressed tile as a Loader fetches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TraceEvent {
    /// Tile-row coordinate.
    pub tile_row: usize,
    /// Tile-column coordinate.
    pub tile_col: usize,
    /// Bytes of the packed nonzero payload.
    pub payload_bytes: usize,
    /// Bytes of the bitmask (0 for dense tiles).
    pub bitmask_bytes: usize,
    /// Bytes of the group-scale factors (0 unless group-quantized).
    pub scale_bytes: usize,
    /// Number of nonzero codes the tile stores.
    pub nonzeros: usize,
}

impl TraceEvent {
    /// Total bytes this tile pulls from memory.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.payload_bytes + self.bitmask_bytes + self.scale_bytes
    }
}

/// A per-tile memory trace of one compressed matrix, generated through a
/// named streaming decompression engine.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MemoryTrace {
    engine: String,
    events: Vec<TraceEvent>,
}

impl MemoryTrace {
    /// Streams every tile of `matrix` through `engine` (validating it on
    /// the way) and records the per-tile fetch footprint in row-major tile
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates the engine's [`CompressError`] for inconsistent tiles;
    /// the trace is only produced if the entire matrix decompresses.
    pub fn from_matrix(
        matrix: &CompressedMatrix,
        engine: &dyn DecompressEngine,
    ) -> Result<Self, CompressError> {
        let mut tile = DenseTile::zero();
        let mut scratch = DecompressScratch::new();
        let mut events = Vec::with_capacity(matrix.tile_rows() * matrix.tile_cols());
        for tr in 0..matrix.tile_rows() {
            for tc in 0..matrix.tile_cols() {
                let compressed = matrix.tile(tr, tc);
                engine.decompress_tile_into(compressed, &mut scratch, &mut tile)?;
                events.push(TraceEvent {
                    tile_row: tr,
                    tile_col: tc,
                    payload_bytes: compressed.payload_bytes(),
                    bitmask_bytes: compressed
                        .bitmask()
                        .map_or(0, deca_compress::Bitmask::byte_size),
                    scale_bytes: compressed.scales().len(),
                    nonzeros: compressed.nonzero_count(),
                });
            }
        }
        Ok(MemoryTrace {
            engine: engine.name().to_string(),
            events,
        })
    }

    /// Name of the engine that generated (and validated) this trace.
    #[must_use]
    pub fn engine(&self) -> &str {
        &self.engine
    }

    /// The per-tile events in row-major tile order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of tiles traced.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace holds no tiles.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total bytes across all tiles.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.events.iter().map(TraceEvent::total_bytes).sum()
    }

    /// Mean bytes per tile (0 for an empty trace).
    #[must_use]
    pub fn mean_bytes_per_tile(&self) -> f64 {
        if self.events.is_empty() {
            0.0
        } else {
            self.total_bytes() as f64 / self.events.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_compress::{
        generator::WeightGenerator, CompressionScheme, Compressor, EngineKind, WordParallelEngine,
    };

    fn sample_matrix(scheme: CompressionScheme) -> CompressedMatrix {
        let m = WeightGenerator::new(12).dense_matrix(64, 64);
        Compressor::new(scheme)
            .compress_matrix(&m)
            .expect("compress")
    }

    #[test]
    fn trace_covers_every_tile_with_exact_byte_accounting() {
        let cm = sample_matrix(CompressionScheme::bf8_sparse(0.3));
        let engine = WordParallelEngine::new();
        let trace = MemoryTrace::from_matrix(&cm, &engine).expect("trace");
        assert_eq!(trace.len(), cm.tile_rows() * cm.tile_cols());
        assert_eq!(trace.total_bytes(), cm.total_bytes());
        assert_eq!(trace.engine(), "word-parallel");
        assert!(!trace.is_empty());
        for event in trace.events() {
            assert_eq!(
                event.total_bytes(),
                cm.tile(event.tile_row, event.tile_col).byte_size()
            );
            assert_eq!(event.bitmask_bytes, 64);
        }
    }

    #[test]
    fn sparse_traces_are_lumpy_but_average_to_the_scheme() {
        let scheme = CompressionScheme::bf8_sparse(0.3);
        // A naturally sparse matrix (no magnitude pruning) has binomially
        // distributed per-tile nonzero counts: the trace must be lumpy but
        // average out to the scheme's analytic tile size.
        let m = WeightGenerator::new(13).sparse_matrix(128, 128, 0.3);
        let cm = Compressor::new(scheme)
            .without_pruning()
            .compress_matrix(&m)
            .expect("compress");
        let trace =
            MemoryTrace::from_matrix(&cm, &deca_compress::ScalarEngine::new()).expect("trace");
        let mean = trace.mean_bytes_per_tile();
        let expected = scheme.expected_tile_bytes();
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} vs expected {expected}"
        );
        let bytes: Vec<usize> = trace.events().iter().map(TraceEvent::total_bytes).collect();
        assert!(bytes.iter().any(|b| (*b as f64) != mean));
    }

    #[test]
    fn every_engine_generates_the_same_trace() {
        let cm = sample_matrix(CompressionScheme::mxfp4());
        let reference =
            MemoryTrace::from_matrix(&cm, EngineKind::Scalar.build().as_ref()).expect("trace");
        for kind in EngineKind::all() {
            let trace = MemoryTrace::from_matrix(&cm, kind.build().as_ref()).expect("trace");
            assert_eq!(trace.events(), reference.events());
        }
    }
}
