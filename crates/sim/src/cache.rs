//! Cache-hierarchy and NoC latency parameters.
//!
//! Compressed weight streams have essentially no temporal reuse, so caches
//! matter through (a) the latency of the level the consumer reads from and
//! (b) how many misses can be in flight (MSHRs), which bounds how much
//! latency a prefetcher can hide.

/// Latency (in core cycles) and capacity parameters of the on-chip memory
/// hierarchy.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CacheConfig {
    /// L1 data cache hit latency.
    pub l1_latency: f64,
    /// L2 hit latency.
    pub l2_latency: f64,
    /// LLC slice hit latency, including the NoC hop to reach it.
    pub llc_latency: f64,
    /// DRAM access latency beyond the LLC (core cycles).
    pub memory_latency: f64,
    /// NoC hop latency used for core↔LLC and DECA↔LLC traffic.
    pub noc_hop_latency: f64,
    /// Outstanding misses the L2 can sustain (bounds prefetch depth).
    pub l2_mshrs: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// SPR-like hierarchy parameters at 2.5 GHz (rounded from public
    /// latency measurements of Sapphire Rapids).
    #[must_use]
    pub fn spr() -> Self {
        CacheConfig {
            l1_latency: 5.0,
            l2_latency: 16.0,
            llc_latency: 60.0,
            memory_latency: 280.0,
            noc_hop_latency: 12.0,
            l2_mshrs: 48,
            line_bytes: 64,
        }
    }

    /// Total unloaded latency of a demand access that misses all the way to
    /// DRAM and is consumed from the L2.
    #[must_use]
    pub fn demand_miss_latency(&self) -> f64 {
        self.l2_latency + self.llc_latency + self.memory_latency
    }

    /// Latency of reading data that is already resident in the L2 (e.g.
    /// brought there by a prefetcher).
    #[must_use]
    pub fn l2_hit_latency(&self) -> f64 {
        self.l2_latency
    }

    /// Latency of reading data from the LLC (bypassing the L2), e.g. the
    /// base DECA integration that reads compressed tiles from the LLC.
    #[must_use]
    pub fn llc_read_latency(&self) -> f64 {
        self.llc_latency + self.noc_hop_latency
    }

    /// Round-trip cost of handing a decompressed tile to the consumer
    /// through the L2 (write + read back) instead of dedicated registers.
    #[must_use]
    pub fn l2_roundtrip_latency(&self) -> f64 {
        2.0 * self.l2_latency
    }

    /// Cache lines needed to hold `bytes`.
    #[must_use]
    pub fn lines_for(&self, bytes: f64) -> usize {
        (bytes / self.line_bytes as f64).ceil() as usize
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::spr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spr_latencies_are_ordered() {
        let c = CacheConfig::spr();
        assert!(c.l1_latency < c.l2_latency);
        assert!(c.l2_latency < c.llc_latency);
        assert!(c.llc_latency < c.memory_latency);
        assert!(c.demand_miss_latency() > c.memory_latency);
    }

    #[test]
    fn derived_latencies() {
        let c = CacheConfig::spr();
        assert_eq!(c.l2_hit_latency(), 16.0);
        assert_eq!(c.llc_read_latency(), 72.0);
        assert_eq!(c.l2_roundtrip_latency(), 32.0);
    }

    #[test]
    fn lines_for_rounds_up() {
        let c = CacheConfig::spr();
        assert_eq!(c.lines_for(64.0), 1);
        assert_eq!(c.lines_for(65.0), 2);
        assert_eq!(c.lines_for(1024.0), 16);
        assert_eq!(c.lines_for(89.6), 2);
    }

    #[test]
    fn default_is_spr() {
        assert_eq!(CacheConfig::default(), CacheConfig::spr());
    }
}
