//! The per-core tile-pipeline executor.
//!
//! A compressed GeMM kernel — software (libxsmm-style) or DECA-accelerated,
//! in any integration configuration — is described to the simulator as a
//! [`TileExecModel`]: how many bytes each tile pulls from memory, how long
//! each of the per-core resources (decompression engine, core issue slots,
//! TMUL) is occupied per tile, which communication latencies are exposed on
//! the critical path, and how the kernel's invocation scheme serializes or
//! overlaps iterations.
//!
//! The executor plays a stream of tiles through four servers — the per-core
//! share of the memory channel, the decompression engine, the core front-end
//! and the TMUL — using the recurrences documented on
//! [`GemmSimulation::run`], and reports occupancy statistics.

use deca_roofsurface::MachineConfig;

use crate::{CacheConfig, GemmStats, MemoryController, MemoryTrace, PrefetchConfig, TraceEvent};

/// How the core invokes the decompression engine, which determines how much
/// cross-iteration overlap survives (§5.2–5.3).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum InvocationModel {
    /// Iterations overlap freely up to the buffering depth: the software
    /// double-buffer scheme, or TEPL-based DECA invocation. Decompression of
    /// tile *i* may start as soon as the buffer/loader used by tile
    /// *i − depth* has been handed to the consumer.
    Overlapped,
    /// Store + fence based invocation: the command that triggers tile *i*'s
    /// decompression only executes after iteration *i − depth* has fully
    /// completed, and every iteration additionally pays `overhead_cycles` of
    /// serialized core work (store drain, fence, MMIO write).
    Serialized {
        /// Per-iteration serialized overhead in cycles.
        overhead_cycles: f64,
    },
}

/// The per-tile execution profile of a compressed-GeMM kernel on one core.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TileExecModel {
    /// Bytes fetched from memory per weight tile (compressed size).
    pub bytes_per_tile: f64,
    /// Cycles the decompression engine (the core's SIMD ports for the
    /// software kernel, the DECA PE for the accelerated one) is busy per
    /// tile.
    pub decompress_cycles_per_tile: f64,
    /// Core issue/commit-slot cycles consumed per tile (the full dynamic
    /// instruction stream of one iteration divided by the core width).
    pub core_cycles_per_tile: f64,
    /// Cycles the TMUL is busy per tile (16 on SPR).
    pub tmul_cycles_per_tile: f64,
    /// Extra latency, beyond what the prefetcher leaves exposed, between a
    /// tile's data being available and decompression starting (e.g. reading
    /// compressed data from the LLC instead of the L2).
    pub exposed_pre_latency: f64,
    /// Latency between the decompressed tile being produced and the TMUL
    /// consuming it (L2 round-trip for the base DECA integration, a TOut /
    /// tile-register read otherwise).
    pub exposed_post_latency: f64,
    /// How the decompression engine is invoked (overlapped vs serialized).
    pub invocation: InvocationModel,
    /// How many tiles may be in flight between invocation and consumption
    /// (2 with double software buffers / dual DECA Loaders).
    pub buffering_depth: usize,
    /// Prefetch behaviour covering the compressed-tile stream.
    pub prefetch: PrefetchConfig,
}

impl TileExecModel {
    /// The per-tile cycle cost that bounds steady-state throughput if every
    /// latency were perfectly hidden: the slowest per-core resource.
    #[must_use]
    pub fn steady_state_bound_cycles(&self, per_core_bytes_per_cycle: f64) -> f64 {
        let mem = self.bytes_per_tile / per_core_bytes_per_cycle;
        mem.max(self.decompress_cycles_per_tile)
            .max(self.core_cycles_per_tile)
            .max(self.tmul_cycles_per_tile)
    }

    /// Basic sanity checks, used by the simulation entry point.
    fn validate(&self) {
        assert!(self.bytes_per_tile >= 0.0, "negative bytes per tile");
        assert!(
            self.decompress_cycles_per_tile >= 0.0
                && self.core_cycles_per_tile >= 0.0
                && self.tmul_cycles_per_tile > 0.0,
            "per-tile cycle costs must be non-negative (TMUL strictly positive)"
        );
        assert!(
            self.buffering_depth >= 1,
            "at least one tile must be allowed in flight"
        );
    }
}

/// A multicore compressed-GeMM simulation.
///
/// The cores are symmetric (Parlooper assigns each an equal share of the
/// output), so one representative core is simulated against its fair share
/// of the socket's memory bandwidth; socket-level numbers scale by the core
/// count. Bandwidth contention shows up as the fair-share cap. (The explicit
/// per-core alternative that shares one socket-level controller lives in
/// [`crate::MulticoreGemmSimulation`]; the two agree in the steady-state
/// regimes the evaluation uses.)
#[derive(Debug, Clone)]
pub struct GemmSimulation {
    machine: MachineConfig,
    cache: CacheConfig,
}

impl GemmSimulation {
    /// Creates a simulation for a machine and cache configuration.
    #[must_use]
    pub fn new(machine: MachineConfig, cache: CacheConfig) -> Self {
        GemmSimulation { machine, cache }
    }

    /// The machine being simulated.
    #[must_use]
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The cache configuration being simulated.
    #[must_use]
    pub fn cache(&self) -> &CacheConfig {
        &self.cache
    }

    /// Socket bytes per core cycle.
    fn socket_bytes_per_cycle(&self) -> f64 {
        self.machine.memory_bandwidth_bytes_per_sec() / self.machine.frequency_hz()
    }

    /// Runs `tiles_per_core` weight tiles through the model on every core
    /// and returns the aggregate statistics.
    ///
    /// Per tile `i` the executor applies (all times in core cycles; `depth`
    /// is the buffering depth, `run` the prefetch run-ahead in tiles):
    ///
    /// ```text
    /// mem_trigger[i]   = consume_done[i - depth - run]
    /// data_ready[i]    = mem.request(mem_trigger[i], bytes) + exposed_fetch_latency
    /// invoke[i]        = Overlapped:  consume_start[i - depth]
    ///                    Serialized:  consume_done[i - depth]
    /// decomp_start[i]  = max(data_ready[i], decomp_free, core_free, invoke[i])
    /// decomp_done[i]   = decomp_start[i] + decompress_cycles
    /// core_free        = decomp_start[i] + core_cycles
    /// consume_start[i] = max(decomp_done[i] + post_latency, tmul_free)
    /// consume_done[i]  = consume_start[i] + tmul_cycles (+ overhead if serialized)
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the model fails validation or `tiles_per_core` is zero.
    #[must_use]
    pub fn run(&self, model: &TileExecModel, tiles_per_core: usize) -> GemmStats {
        model.validate();
        assert!(tiles_per_core > 0, "must simulate at least one tile");
        self.run_once(model, tiles_per_core, |_| model.bytes_per_tile)
    }

    /// Replays an actual per-tile memory trace through the executor: every
    /// tile pays for its *own* compressed bytes (lumpy real matrices)
    /// instead of the scheme-average `bytes_per_tile` of the model, whose
    /// cycle costs and latency/overlap knobs still apply. The trace comes
    /// from [`MemoryTrace::from_matrix`], which streams the matrix through
    /// a named decompression engine.
    ///
    /// # Panics
    ///
    /// Panics if the model fails validation or the trace is empty.
    #[must_use]
    pub fn run_trace(&self, model: &TileExecModel, trace: &MemoryTrace) -> GemmStats {
        model.validate();
        assert!(!trace.is_empty(), "must simulate at least one tile");
        let events = trace.events();
        self.run_once(model, events.len(), |i| {
            TraceEvent::total_bytes(&events[i]) as f64
        })
    }

    fn run_once(
        &self,
        model: &TileExecModel,
        tiles_per_core: usize,
        bytes_of: impl Fn(usize) -> f64,
    ) -> GemmStats {
        let lines_per_tile = self.cache.lines_for(model.bytes_per_tile.max(1.0));
        let prefetch = model
            .prefetch
            .clamped_to_mshrs(self.cache.l2_mshrs, lines_per_tile);
        // The memory controller below carries no intrinsic latency; latency
        // exposure is handled explicitly so prefetching can hide it. Unloaded
        // latencies are used throughout: when bandwidth saturates, latency is
        // off the critical path anyway (the channel's busy time dominates),
        // and keeping the latency independent of the measured utilization
        // keeps the model monotone across configurations.
        let mut memory = MemoryController::fair_share(
            self.socket_bytes_per_cycle(),
            self.machine.cores,
            0.0,
            0.0,
        );
        let miss_latency = self.cache.demand_miss_latency();
        let hit_latency = self.cache.l2_hit_latency();
        let fetch_latency =
            prefetch.exposed_latency(miss_latency, hit_latency) + model.exposed_pre_latency;

        // A prefetcher keeps `distance` tiles in flight beyond the consumer's
        // own buffering, so bandwidth is consumed early and only the residual
        // (coverage-weighted) latency stays on the critical path.
        let runahead = if prefetch.is_enabled() {
            prefetch.distance_tiles.round() as usize
        } else {
            0
        };
        let depth = model.buffering_depth;
        let mem_depth = depth + runahead;
        let (serialized, overhead) = match model.invocation {
            InvocationModel::Overlapped => (false, 0.0),
            InvocationModel::Serialized { overhead_cycles } => (true, overhead_cycles),
        };

        let mut consume_start = vec![0.0f64; tiles_per_core];
        let mut consume_done = vec![0.0f64; tiles_per_core];
        let mut decomp_free = 0.0f64;
        let mut core_free = 0.0f64;
        let mut tmul_free = 0.0f64;

        for i in 0..tiles_per_core {
            let mem_trigger = if i >= mem_depth {
                consume_done[i - mem_depth]
            } else {
                0.0
            };
            let data_ready = memory.request(mem_trigger, bytes_of(i), fetch_latency);
            let invoke = if i >= depth {
                if serialized {
                    consume_done[i - depth]
                } else {
                    consume_start[i - depth]
                }
            } else {
                0.0
            };
            let decomp_start = data_ready.max(decomp_free).max(core_free).max(invoke);
            let decomp_done = decomp_start + model.decompress_cycles_per_tile;
            decomp_free = decomp_done;
            core_free = decomp_start + model.core_cycles_per_tile;
            consume_start[i] = (decomp_done + model.exposed_post_latency).max(tmul_free);
            consume_done[i] = consume_start[i]
                + model.tmul_cycles_per_tile
                + if serialized { overhead } else { 0.0 };
            tmul_free = consume_done[i];
        }

        let total_cycles = consume_done[tiles_per_core - 1];
        GemmStats {
            cores: self.machine.cores,
            tiles_per_core,
            tiles_processed: tiles_per_core * self.machine.cores,
            total_cycles,
            memory_busy_cycles: memory.busy_cycles(),
            tmul_busy_cycles: tiles_per_core as f64 * model.tmul_cycles_per_tile,
            decompress_busy_cycles: tiles_per_core as f64 * model.decompress_cycles_per_tile,
            core_issue_cycles: tiles_per_core as f64
                * (model.core_cycles_per_tile + if serialized { overhead } else { 0.0 }),
            bytes_per_core: memory.bytes_transferred(),
        }
    }

    /// Convenience wrapper: simulate enough tiles to reach steady state (a
    /// few thousand) and report socket TFLOPS for batch size `n`.
    #[must_use]
    pub fn steady_state_tflops(&self, model: &TileExecModel, n: usize) -> f64 {
        self.run(model, 4096).tflops(&self.machine, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_roofsurface::MachineConfig;

    fn base_model() -> TileExecModel {
        TileExecModel {
            bytes_per_tile: 512.0,
            decompress_cycles_per_tile: 40.0,
            core_cycles_per_tile: 30.0,
            tmul_cycles_per_tile: 16.0,
            exposed_pre_latency: 0.0,
            exposed_post_latency: 0.0,
            invocation: InvocationModel::Overlapped,
            buffering_depth: 2,
            prefetch: PrefetchConfig::stream(8),
        }
    }

    fn sim() -> GemmSimulation {
        GemmSimulation::new(MachineConfig::spr_hbm(), CacheConfig::spr())
    }

    #[test]
    fn throughput_is_bounded_by_slowest_resource() {
        let s = sim();
        let model = base_model();
        let stats = s.run(&model, 4000);
        let per_core_bpc = s.socket_bytes_per_cycle() / 56.0;
        let bound = model.steady_state_bound_cycles(per_core_bpc);
        let cpt = stats.cycles_per_tile();
        assert!(
            cpt >= bound * 0.999,
            "cycles/tile {cpt} below bound {bound}"
        );
        assert!(
            cpt <= bound * 1.10,
            "cycles/tile {cpt} far above bound {bound}"
        );
    }

    #[test]
    fn serialized_invocation_is_slower_than_overlapped() {
        let s = sim();
        // Use a compressed-enough tile that memory is not the bottleneck, so
        // the serialization penalty is visible.
        let mut overlapped_model = base_model();
        overlapped_model.bytes_per_tile = 128.0;
        let mut serial = overlapped_model.clone();
        serial.invocation = InvocationModel::Serialized {
            overhead_cycles: 36.0,
        };
        let overlapped = s.run(&overlapped_model, 2000);
        let serialized = s.run(&serial, 2000);
        assert!(
            serialized.total_cycles > overlapped.total_cycles * 1.2,
            "serialization must cost noticeably: {} vs {}",
            serialized.total_cycles,
            overlapped.total_cycles
        );
    }

    #[test]
    fn serialization_overhead_matters_more_for_cheap_tiles() {
        // The paper observes that TEPL's benefit grows as density shrinks
        // because DECA's per-tile time shrinks while communication stays
        // constant (§9.3).
        let s = sim();
        let run_pair = |decomp: f64, bytes: f64| {
            let mut fast = base_model();
            fast.decompress_cycles_per_tile = decomp;
            fast.bytes_per_tile = bytes;
            fast.exposed_post_latency = 6.0;
            let mut slow = fast.clone();
            slow.invocation = InvocationModel::Serialized {
                overhead_cycles: 36.0,
            };
            let a = s.run(&fast, 2000).total_cycles;
            let b = s.run(&slow, 2000).total_cycles;
            b / a
        };
        let penalty_dense = run_pair(64.0, 512.0);
        let penalty_sparse = run_pair(17.0, 90.0);
        assert!(
            penalty_sparse > penalty_dense,
            "sparse {penalty_sparse} dense {penalty_dense}"
        );
    }

    #[test]
    fn missing_prefetch_exposes_memory_latency() {
        let s = sim();
        let mut no_pf = base_model();
        no_pf.prefetch = PrefetchConfig::none();
        let with_pf = s.run(&base_model(), 2000);
        let without = s.run(&no_pf, 2000);
        assert!(without.total_cycles > with_pf.total_cycles);
    }

    #[test]
    fn post_latency_cost_is_bounded_by_its_face_value() {
        let s = sim();
        let mut with_post = base_model();
        with_post.exposed_post_latency = 32.0;
        let base = s.run(&base_model(), 2000);
        let post = s.run(&with_post, 2000);
        assert!(post.total_cycles >= base.total_cycles);
        let added_per_tile = (post.total_cycles - base.total_cycles) / 2000.0;
        assert!(added_per_tile <= 32.0 + 1e-9);
    }

    #[test]
    fn utilizations_are_consistent_with_bottleneck() {
        let s = sim();
        let mut mem_bound = base_model();
        mem_bound.bytes_per_tile = 1024.0;
        mem_bound.decompress_cycles_per_tile = 8.0;
        mem_bound.core_cycles_per_tile = 8.0;
        let stats = s.run(&mem_bound, 4000);
        assert!(stats.memory_utilization() > 0.9);
        assert!(stats.tmul_utilization() < 0.3);
        // FLOPS at N=1 should be near the bandwidth-bound value
        // 850e9/1024*512 = 0.425 TFLOPS.
        let tflops = stats.tflops(&MachineConfig::spr_hbm(), 1);
        assert!((tflops - 0.425).abs() < 0.03, "tflops {tflops}");
    }

    #[test]
    fn core_issue_can_become_the_bottleneck() {
        let s = sim();
        let mut front_end_bound = base_model();
        front_end_bound.core_cycles_per_tile = 120.0;
        front_end_bound.decompress_cycles_per_tile = 20.0;
        let stats = s.run(&front_end_bound, 2000);
        assert!((stats.cycles_per_tile() - 120.0).abs() / 120.0 < 0.1);
        assert!(stats.core_issue_utilization() > 0.9);
    }

    #[test]
    fn more_cores_saturate_bandwidth() {
        // Fig. 14 behaviour: with few cores the kernel is core-side bound
        // and throughput scales with cores; with many cores memory saturates.
        let machine = MachineConfig::spr_ddr();
        let model = TileExecModel {
            bytes_per_tile: 320.0,
            decompress_cycles_per_tile: 72.0,
            core_cycles_per_tile: 40.0,
            ..base_model()
        };
        let tflops_at = |cores: usize| {
            GemmSimulation::new(machine.with_cores(cores), CacheConfig::spr())
                .run(&model, 3000)
                .tflops(&machine.with_cores(cores), 4)
        };
        let t8 = tflops_at(8);
        let t16 = tflops_at(16);
        let t56 = tflops_at(56);
        assert!(t16 > 1.8 * t8, "should scale nearly linearly at low counts");
        assert!(t56 < 2.0 * t16, "must flatten once bandwidth saturates");
    }

    #[test]
    fn steady_state_helper_matches_run() {
        let s = sim();
        let model = base_model();
        let a = s.steady_state_tflops(&model, 4);
        let b = s.run(&model, 4096).tflops(&MachineConfig::spr_hbm(), 4);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn zero_tiles_is_rejected() {
        let _ = sim().run(&base_model(), 0);
    }

    #[test]
    fn trace_replay_matches_uniform_run_for_uniform_tiles() {
        use deca_compress::{
            generator::WeightGenerator, CompressionScheme, Compressor, WordParallelEngine,
        };
        let s = sim();
        // A dense BF8 matrix compresses every tile to exactly 512 bytes, so
        // the trace-driven replay must agree with the uniform model run.
        let m = WeightGenerator::new(3).dense_matrix(256, 512);
        let cm = Compressor::new(CompressionScheme::bf8_dense())
            .compress_matrix(&m)
            .expect("compress");
        let trace = MemoryTrace::from_matrix(&cm, &WordParallelEngine::new()).expect("trace");
        let model = base_model();
        let uniform = s.run(&model, trace.len());
        let traced = s.run_trace(&model, &trace);
        assert_eq!(traced.tiles_per_core, uniform.tiles_per_core);
        assert!((traced.total_cycles - uniform.total_cycles).abs() < 1e-6);
    }

    #[test]
    fn lumpy_sparse_traces_shift_the_memory_time() {
        use deca_compress::{
            generator::WeightGenerator, CompressionScheme, Compressor, WordParallelEngine,
        };
        let s = sim();
        let scheme = CompressionScheme::bf8_sparse(0.3);
        let m = WeightGenerator::new(4).dense_matrix(256, 512);
        let cm = Compressor::new(scheme)
            .compress_matrix(&m)
            .expect("compress");
        let trace = MemoryTrace::from_matrix(&cm, &WordParallelEngine::new()).expect("trace");
        let mut model = base_model();
        model.bytes_per_tile = scheme.expected_tile_bytes();
        let traced = s.run_trace(&model, &trace);
        // The replay moves exactly the matrix's real bytes.
        assert!((traced.bytes_per_core - trace.total_bytes() as f64).abs() < 1e-6);
    }
}
