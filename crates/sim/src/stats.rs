//! Simulation statistics.

use deca_roofsurface::MachineConfig;

/// Per-run statistics of a simulated compressed GeMM.
///
/// All cycle counts are per core (the simulated cores are symmetric);
/// socket-level rates multiply by the core count of the machine the run was
/// configured with.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GemmStats {
    /// Number of cores the run modelled.
    pub cores: usize,
    /// Weight tiles processed per core.
    pub tiles_per_core: usize,
    /// Total weight tiles processed across all cores.
    pub tiles_processed: usize,
    /// Cycles from start to the last tile's completion (per core).
    pub total_cycles: f64,
    /// Cycles the per-core share of the memory channel spent transferring.
    pub memory_busy_cycles: f64,
    /// Cycles the TMUL was busy (per core).
    pub tmul_busy_cycles: f64,
    /// Cycles the decompression engine (AVX ports or DECA PE) was busy (per
    /// core).
    pub decompress_busy_cycles: f64,
    /// Cycles' worth of core issue/commit slots consumed (per core).
    pub core_issue_cycles: f64,
    /// Bytes fetched from memory per core.
    pub bytes_per_core: f64,
}

impl GemmStats {
    /// Memory-bandwidth utilization in `[0, 1]`.
    #[must_use]
    pub fn memory_utilization(&self) -> f64 {
        ratio(self.memory_busy_cycles, self.total_cycles)
    }

    /// TMUL utilization in `[0, 1]`.
    #[must_use]
    pub fn tmul_utilization(&self) -> f64 {
        ratio(self.tmul_busy_cycles, self.total_cycles)
    }

    /// Decompression-engine utilization in `[0, 1]`.
    #[must_use]
    pub fn decompress_utilization(&self) -> f64 {
        ratio(self.decompress_busy_cycles, self.total_cycles)
    }

    /// Fraction of core issue/commit slots used, the statistic quoted in
    /// §4.2 ("cores are already using 40–80 % of their commit slots").
    #[must_use]
    pub fn core_issue_utilization(&self) -> f64 {
        ratio(self.core_issue_cycles, self.total_cycles)
    }

    /// Cycles per tile at steady state (per core).
    #[must_use]
    pub fn cycles_per_tile(&self) -> f64 {
        if self.tiles_per_core == 0 {
            0.0
        } else {
            self.total_cycles / self.tiles_per_core as f64
        }
    }

    /// Socket-level tile throughput in tiles per second.
    #[must_use]
    pub fn tiles_per_second(&self, machine: &MachineConfig) -> f64 {
        if self.total_cycles <= 0.0 {
            return 0.0;
        }
        let seconds = self.total_cycles / machine.frequency_hz();
        self.tiles_processed as f64 / seconds
    }

    /// Socket-level FLOPS (FMAs/s) for batch size `n`.
    #[must_use]
    pub fn flops(&self, machine: &MachineConfig, n: usize) -> f64 {
        deca_roofsurface::FLOPS_PER_TILE_OP_PER_N
            * n.min(16) as f64
            * self.tiles_per_second(machine)
    }

    /// Socket-level TFLOPS for batch size `n`.
    #[must_use]
    pub fn tflops(&self, machine: &MachineConfig, n: usize) -> f64 {
        self.flops(machine, n) / 1e12
    }

    /// Achieved memory bandwidth in GB/s (socket level).
    #[must_use]
    pub fn achieved_bandwidth_gbps(&self, machine: &MachineConfig) -> f64 {
        if self.total_cycles <= 0.0 {
            return 0.0;
        }
        let seconds = self.total_cycles / machine.frequency_hz();
        self.bytes_per_core * self.cores as f64 / seconds / 1e9
    }

    /// Wall-clock seconds this GeMM (the simulated portion) took.
    #[must_use]
    pub fn seconds(&self, machine: &MachineConfig) -> f64 {
        self.total_cycles / machine.frequency_hz()
    }

    /// A compact utilization summary in the style of Table 3.
    #[must_use]
    pub fn utilization_report(&self) -> UtilizationReport {
        UtilizationReport {
            memory: self.memory_utilization(),
            tmul: self.tmul_utilization(),
            decompressor: self.decompress_utilization(),
            core_issue: self.core_issue_utilization(),
        }
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        (num / den).clamp(0.0, 1.0)
    }
}

/// The MEM / TMUL / decompressor utilization triple reported in Table 3.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UtilizationReport {
    /// Memory bandwidth utilization.
    pub memory: f64,
    /// TMUL utilization.
    pub tmul: f64,
    /// AVX-or-DECA utilization.
    pub decompressor: f64,
    /// Core issue/commit slot utilization.
    pub core_issue: f64,
}

impl std::fmt::Display for UtilizationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MEM {:>5.1}%  TMUL {:>5.1}%  DECOMP {:>5.1}%  ISSUE {:>5.1}%",
            self.memory * 100.0,
            self.tmul * 100.0,
            self.decompressor * 100.0,
            self.core_issue * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GemmStats {
        GemmStats {
            cores: 56,
            tiles_per_core: 1000,
            tiles_processed: 56_000,
            total_cycles: 64_000.0,
            memory_busy_cycles: 32_000.0,
            tmul_busy_cycles: 16_000.0,
            decompress_busy_cycles: 60_000.0,
            core_issue_cycles: 30_000.0,
            bytes_per_core: 512_000.0,
        }
    }

    #[test]
    fn utilizations_are_ratios() {
        let s = sample();
        assert!((s.memory_utilization() - 0.5).abs() < 1e-12);
        assert!((s.tmul_utilization() - 0.25).abs() < 1e-12);
        assert!((s.decompress_utilization() - 0.9375).abs() < 1e-12);
        assert!((s.core_issue_utilization() - 0.46875).abs() < 1e-12);
        assert_eq!(s.cycles_per_tile(), 64.0);
    }

    #[test]
    fn socket_rates_scale_with_cores_and_frequency() {
        let s = sample();
        let machine = MachineConfig::spr_hbm();
        let seconds = 64_000.0 / 2.5e9;
        let tps = 56_000.0 / seconds;
        assert!((s.tiles_per_second(&machine) - tps).abs() / tps < 1e-12);
        assert!((s.flops(&machine, 1) - 512.0 * tps).abs() / (512.0 * tps) < 1e-12);
        assert_eq!(s.flops(&machine, 16), s.flops(&machine, 99));
        assert!(s.achieved_bandwidth_gbps(&machine) > 0.0);
        assert!((s.seconds(&machine) - seconds).abs() < 1e-18);
    }

    #[test]
    fn report_formats_percentages() {
        let s = sample().utilization_report();
        let text = s.to_string();
        assert!(text.contains("MEM"));
        assert!(text.contains("TMUL"));
        assert!(text.contains('%'));
    }

    #[test]
    fn degenerate_stats_do_not_divide_by_zero() {
        let mut s = sample();
        s.total_cycles = 0.0;
        s.tiles_per_core = 0;
        assert_eq!(s.memory_utilization(), 0.0);
        assert_eq!(s.cycles_per_tile(), 0.0);
        assert_eq!(s.tiles_per_second(&MachineConfig::spr_hbm()), 0.0);
    }
}
