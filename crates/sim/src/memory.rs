//! Shared memory-bandwidth model.
//!
//! The memory controller is the one resource all cores contend for. It is
//! modelled as a serial channel of `bytes_per_cycle` capacity plus an access
//! latency: a request issued at time `t` starts transferring when the
//! channel frees up, occupies it for `bytes / bytes_per_cycle` cycles and
//! completes `latency` cycles after its transfer finishes. Under symmetric
//! load the channel can equivalently be partitioned into fair per-core
//! shares; [`MemoryController::fair_share`] builds that per-core view, with
//! a queueing-delay inflation applied when the socket-level utilization is
//! high.

/// A bandwidth-limited, latency-bearing memory channel.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryController {
    bytes_per_cycle: f64,
    latency_cycles: f64,
    busy_until: f64,
    bytes_transferred: f64,
    busy_cycles: f64,
}

impl MemoryController {
    /// Creates a channel with the given capacity and unloaded latency.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not strictly positive or the latency is
    /// negative.
    #[must_use]
    pub fn new(bytes_per_cycle: f64, latency_cycles: f64) -> Self {
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        assert!(latency_cycles >= 0.0, "latency cannot be negative");
        MemoryController {
            bytes_per_cycle,
            latency_cycles,
            busy_until: 0.0,
            bytes_transferred: 0.0,
            busy_cycles: 0.0,
        }
    }

    /// Builds the per-core fair-share view of a socket-level channel:
    /// `total_bytes_per_cycle / cores` of bandwidth, with the unloaded
    /// latency inflated by an M/M/1-style queueing factor at the given
    /// expected socket utilization.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `expected_utilization` is not in
    /// `[0, 1)`… utilizations ≥ 0.98 are clamped.
    #[must_use]
    pub fn fair_share(
        total_bytes_per_cycle: f64,
        cores: usize,
        latency_cycles: f64,
        expected_utilization: f64,
    ) -> Self {
        assert!(cores > 0, "at least one core required");
        assert!(
            (0.0..=1.0).contains(&expected_utilization),
            "utilization must be in [0, 1]"
        );
        let u = expected_utilization.min(0.98);
        // Queueing delay grows as u/(1-u); scale by half the transfer time
        // of a cache line so the inflation stays modest until saturation.
        let queue_factor = 1.0 + 0.3 * u / (1.0 - u);
        MemoryController::new(
            total_bytes_per_cycle / cores as f64,
            latency_cycles * queue_factor.min(4.0),
        )
    }

    /// Channel capacity in bytes per cycle.
    #[must_use]
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Unloaded access latency in cycles.
    #[must_use]
    pub fn latency_cycles(&self) -> f64 {
        self.latency_cycles
    }

    /// Issues a transfer of `bytes` at time `now`; returns the cycle at
    /// which the data is available `extra_latency` cycles downstream of the
    /// controller (e.g. in the L2 or in a DECA load queue).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative or `now` is not finite.
    pub fn request(&mut self, now: f64, bytes: f64, extra_latency: f64) -> f64 {
        assert!(bytes >= 0.0 && now.is_finite(), "invalid memory request");
        let start = now.max(self.busy_until);
        let transfer = bytes / self.bytes_per_cycle;
        self.busy_until = start + transfer;
        self.bytes_transferred += bytes;
        self.busy_cycles += transfer;
        self.busy_until + self.latency_cycles + extra_latency
    }

    /// The first cycle at which a new transfer could start.
    #[must_use]
    pub fn next_free(&self) -> f64 {
        self.busy_until
    }

    /// Total bytes transferred so far.
    #[must_use]
    pub fn bytes_transferred(&self) -> f64 {
        self.bytes_transferred
    }

    /// Cycles during which the channel was actively transferring.
    #[must_use]
    pub fn busy_cycles(&self) -> f64 {
        self.busy_cycles
    }

    /// Channel utilization over an observation window of `total_cycles`.
    #[must_use]
    pub fn utilization(&self, total_cycles: f64) -> f64 {
        if total_cycles <= 0.0 {
            0.0
        } else {
            (self.busy_cycles / total_cycles).min(1.0)
        }
    }

    /// Resets the accounting (keeps the configuration).
    pub fn reset(&mut self) {
        self.busy_until = 0.0;
        self.bytes_transferred = 0.0;
        self.busy_cycles = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_requests_serialize_on_bandwidth() {
        let mut mem = MemoryController::new(8.0, 100.0);
        // 800 bytes = 100 cycles of transfer.
        let t1 = mem.request(0.0, 800.0, 0.0);
        assert_eq!(t1, 200.0); // 100 transfer + 100 latency
                               // Issued immediately after, but the channel is busy until cycle 100.
        let t2 = mem.request(1.0, 800.0, 0.0);
        assert_eq!(t2, 300.0);
        assert_eq!(mem.bytes_transferred(), 1600.0);
        assert_eq!(mem.busy_cycles(), 200.0);
    }

    #[test]
    fn latency_is_added_after_transfer() {
        let mut mem = MemoryController::new(64.0, 50.0);
        let done = mem.request(10.0, 64.0, 16.0);
        assert_eq!(done, 10.0 + 1.0 + 50.0 + 16.0);
    }

    #[test]
    fn idle_channel_starts_at_request_time() {
        let mut mem = MemoryController::new(4.0, 0.0);
        let t = mem.request(1000.0, 40.0, 0.0);
        assert_eq!(t, 1010.0);
        assert_eq!(mem.next_free(), 1010.0);
    }

    #[test]
    fn utilization_is_busy_over_total() {
        let mut mem = MemoryController::new(8.0, 0.0);
        mem.request(0.0, 400.0, 0.0); // 50 cycles
        assert!((mem.utilization(100.0) - 0.5).abs() < 1e-12);
        assert_eq!(mem.utilization(0.0), 0.0);
        mem.reset();
        assert_eq!(mem.bytes_transferred(), 0.0);
    }

    #[test]
    fn fair_share_divides_bandwidth_and_inflates_latency() {
        let per_core = MemoryController::fair_share(340.0, 56, 280.0, 0.0);
        assert!((per_core.bytes_per_cycle() - 340.0 / 56.0).abs() < 1e-12);
        assert_eq!(per_core.latency_cycles(), 280.0);
        let loaded = MemoryController::fair_share(340.0, 56, 280.0, 0.9);
        assert!(loaded.latency_cycles() > 280.0);
        // The inflation is capped at 4x.
        let saturated = MemoryController::fair_share(340.0, 56, 280.0, 1.0);
        assert!(saturated.latency_cycles() <= 4.0 * 280.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_is_rejected() {
        let _ = MemoryController::new(0.0, 10.0);
    }
}
