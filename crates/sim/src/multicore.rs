//! Explicit multi-core simulation with a shared memory controller.
//!
//! [`crate::GemmSimulation`] exploits the symmetry of Parlooper-partitioned
//! GeMMs and simulates one representative core against its fair bandwidth
//! share. This module provides the explicit alternative: every core is an
//! independent agent with its own pipeline state, and all of them issue
//! their tile fetches to a *single* socket-level [`MemoryController`] in
//! global trigger order. It costs `cores×` the simulation time but makes no
//! symmetry assumption, supports uneven tile assignments (the Parlooper
//! remainder), and serves as a cross-check of the fair-share model — the two
//! agree within a few percent for symmetric workloads (see the tests).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use deca_roofsurface::MachineConfig;

use crate::{CacheConfig, GemmStats, InvocationModel, MemoryController, TileExecModel};

/// Per-core pipeline state while the multi-core simulation runs.
#[derive(Debug, Clone)]
struct CoreState {
    next_tile: usize,
    tiles_assigned: usize,
    consume_start: Vec<f64>,
    consume_done: Vec<f64>,
    decomp_free: f64,
    core_free: f64,
    tmul_free: f64,
    finish_time: f64,
}

impl CoreState {
    fn new(tiles_assigned: usize) -> Self {
        CoreState {
            next_tile: 0,
            tiles_assigned,
            consume_start: vec![0.0; tiles_assigned],
            consume_done: vec![0.0; tiles_assigned],
            decomp_free: 0.0,
            core_free: 0.0,
            tmul_free: 0.0,
            finish_time: 0.0,
        }
    }

    fn trigger_for(&self, tile: usize, depth: usize) -> f64 {
        if tile >= depth {
            self.consume_done[tile - depth]
        } else {
            0.0
        }
    }
}

/// Heap entry ordering cores by the time of their next memory request.
#[derive(Debug, PartialEq)]
struct Pending {
    time: f64,
    core: usize,
}

impl Eq for Pending {}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want the earliest time.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.core.cmp(&self.core))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The explicit multi-core compressed-GeMM simulation.
#[derive(Debug, Clone)]
pub struct MulticoreGemmSimulation {
    machine: MachineConfig,
    cache: CacheConfig,
}

impl MulticoreGemmSimulation {
    /// Creates a simulation for a machine and cache configuration.
    #[must_use]
    pub fn new(machine: MachineConfig, cache: CacheConfig) -> Self {
        MulticoreGemmSimulation { machine, cache }
    }

    /// Runs a GeMM whose per-core tile assignment is given explicitly (one
    /// entry per core, e.g. from `Parlooper`). Returns socket-level
    /// statistics; `total_cycles` is the makespan (slowest core).
    ///
    /// # Panics
    ///
    /// Panics if `tiles_per_core.len()` does not match the machine's core
    /// count, or every core has zero tiles.
    #[must_use]
    pub fn run_partitioned(&self, model: &TileExecModel, tiles_per_core: &[usize]) -> GemmStats {
        assert_eq!(
            tiles_per_core.len(),
            self.machine.cores,
            "need one tile count per core"
        );
        let total_tiles: usize = tiles_per_core.iter().sum();
        assert!(total_tiles > 0, "must simulate at least one tile");

        let lines_per_tile = self.cache.lines_for(model.bytes_per_tile.max(1.0));
        let prefetch = model
            .prefetch
            .clamped_to_mshrs(self.cache.l2_mshrs, lines_per_tile);
        let socket_bytes_per_cycle =
            self.machine.memory_bandwidth_bytes_per_sec() / self.machine.frequency_hz();
        let mut memory = MemoryController::new(socket_bytes_per_cycle, 0.0);

        let fetch_latency = prefetch.exposed_latency(
            self.cache.demand_miss_latency(),
            self.cache.l2_hit_latency(),
        ) + model.exposed_pre_latency;
        let runahead = if prefetch.is_enabled() {
            prefetch.distance_tiles.round() as usize
        } else {
            0
        };
        let depth = model.buffering_depth;
        let mem_depth = depth + runahead;
        let (serialized, overhead) = match model.invocation {
            InvocationModel::Overlapped => (false, 0.0),
            InvocationModel::Serialized { overhead_cycles } => (true, overhead_cycles),
        };

        let mut cores: Vec<CoreState> = tiles_per_core
            .iter()
            .map(|&tiles| CoreState::new(tiles))
            .collect();

        let mut heap = BinaryHeap::new();
        for (idx, core) in cores.iter().enumerate() {
            if core.tiles_assigned > 0 {
                heap.push(Pending {
                    time: 0.0,
                    core: idx,
                });
            }
        }

        while let Some(Pending { core: core_idx, .. }) = heap.pop() {
            let core = &mut cores[core_idx];
            let tile = core.next_tile;
            let mem_trigger = core.trigger_for(tile, mem_depth);
            let data_ready = memory.request(mem_trigger, model.bytes_per_tile, fetch_latency);
            let invoke = if tile >= depth {
                if serialized {
                    core.consume_done[tile - depth]
                } else {
                    core.consume_start[tile - depth]
                }
            } else {
                0.0
            };
            let decomp_start = data_ready
                .max(core.decomp_free)
                .max(core.core_free)
                .max(invoke);
            let decomp_done = decomp_start + model.decompress_cycles_per_tile;
            core.decomp_free = decomp_done;
            core.core_free = decomp_start + model.core_cycles_per_tile;
            core.consume_start[tile] =
                (decomp_done + model.exposed_post_latency).max(core.tmul_free);
            core.consume_done[tile] = core.consume_start[tile]
                + model.tmul_cycles_per_tile
                + if serialized { overhead } else { 0.0 };
            core.tmul_free = core.consume_done[tile];
            core.finish_time = core.consume_done[tile];

            core.next_tile += 1;
            if core.next_tile < core.tiles_assigned {
                let next_trigger = core.trigger_for(core.next_tile, mem_depth);
                heap.push(Pending {
                    time: next_trigger,
                    core: core_idx,
                });
            }
        }

        let makespan = cores.iter().map(|c| c.finish_time).fold(0.0, f64::max);
        let busiest = tiles_per_core.iter().copied().max().unwrap_or(0);
        GemmStats {
            cores: self.machine.cores,
            tiles_per_core: busiest,
            tiles_processed: total_tiles,
            total_cycles: makespan,
            // Busy cycles are socket-level here; convert to the per-core
            // convention of `GemmStats` by dividing by the core count so the
            // utilization accessors stay meaningful.
            memory_busy_cycles: memory.busy_cycles(),
            tmul_busy_cycles: busiest as f64 * model.tmul_cycles_per_tile,
            decompress_busy_cycles: busiest as f64 * model.decompress_cycles_per_tile,
            core_issue_cycles: busiest as f64
                * (model.core_cycles_per_tile + if serialized { overhead } else { 0.0 }),
            bytes_per_core: memory.bytes_transferred() / self.machine.cores as f64,
        }
    }

    /// Runs a symmetric GeMM (`tiles_per_core` tiles on every core), the
    /// direct counterpart of [`crate::GemmSimulation::run`].
    ///
    /// # Panics
    ///
    /// Panics if `tiles_per_core` is zero.
    #[must_use]
    pub fn run(&self, model: &TileExecModel, tiles_per_core: usize) -> GemmStats {
        assert!(tiles_per_core > 0, "must simulate at least one tile");
        let assignment = vec![tiles_per_core; self.machine.cores];
        self.run_partitioned(model, &assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GemmSimulation, PrefetchConfig};
    use deca_roofsurface::MachineConfig;

    fn model(bytes: f64, decomp: f64) -> TileExecModel {
        TileExecModel {
            bytes_per_tile: bytes,
            decompress_cycles_per_tile: decomp,
            core_cycles_per_tile: 20.0,
            tmul_cycles_per_tile: 16.0,
            exposed_pre_latency: 0.0,
            exposed_post_latency: 6.0,
            invocation: InvocationModel::Overlapped,
            buffering_depth: 2,
            prefetch: PrefetchConfig::stream(8),
        }
    }

    #[test]
    fn agrees_with_fair_share_model_for_symmetric_workloads() {
        let machine = MachineConfig::spr_hbm();
        let cache = CacheConfig::spr();
        let multicore = MulticoreGemmSimulation::new(machine.clone(), cache.clone());
        let fair = GemmSimulation::new(machine.clone(), cache);
        for m in [
            model(1024.0, 8.0), // memory-bound
            model(90.0, 64.0),  // decompression-bound
            model(320.0, 72.0), // mixed
        ] {
            let a = multicore.run(&m, 800).tflops(&machine, 1);
            let b = fair.run(&m, 800).tflops(&machine, 1);
            let rel = (a - b).abs() / b;
            assert!(
                rel < 0.05,
                "multicore {a:.3} vs fair-share {b:.3} ({rel:.3})"
            );
        }
    }

    #[test]
    fn memory_bound_kernel_saturates_the_shared_controller() {
        let machine = MachineConfig::spr_hbm();
        let sim = MulticoreGemmSimulation::new(machine.clone(), CacheConfig::spr());
        let stats = sim.run(&model(1024.0, 8.0), 1000);
        // Socket-level busy cycles over the makespan ≈ 1.0 when bandwidth
        // saturates.
        assert!(stats.memory_busy_cycles / stats.total_cycles > 0.95);
        let tps = stats.tiles_per_second(&machine);
        let analytic = machine.memory_bandwidth_bytes_per_sec() / 1024.0;
        assert!((tps - analytic).abs() / analytic < 0.05);
    }

    #[test]
    fn uneven_partitions_are_dominated_by_the_busiest_core() {
        let machine = MachineConfig::spr_hbm();
        let sim = MulticoreGemmSimulation::new(machine.clone(), CacheConfig::spr());
        let m = model(90.0, 64.0);
        let mut assignment = vec![100usize; machine.cores];
        assignment[0] = 400; // one straggler core
        let uneven = sim.run_partitioned(&m, &assignment);
        let even = sim.run(&m, 100);
        assert!(uneven.total_cycles > 3.0 * even.total_cycles);
        assert_eq!(uneven.tiles_processed, 100 * (machine.cores - 1) + 400);
    }

    #[test]
    fn idle_cores_do_not_contribute_or_block() {
        let machine = MachineConfig::spr_hbm().with_cores(8);
        let sim = MulticoreGemmSimulation::new(machine.clone(), CacheConfig::spr());
        let m = model(512.0, 40.0);
        let mut assignment = vec![0usize; 8];
        assignment[3] = 500;
        let stats = sim.run_partitioned(&m, &assignment);
        assert_eq!(stats.tiles_processed, 500);
        assert!(stats.total_cycles > 0.0);
    }

    #[test]
    #[should_panic(expected = "one tile count per core")]
    fn wrong_partition_length_is_rejected() {
        let machine = MachineConfig::spr_hbm();
        let sim = MulticoreGemmSimulation::new(machine, CacheConfig::spr());
        let _ = sim.run_partitioned(&model(512.0, 40.0), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn empty_workload_is_rejected() {
        let machine = MachineConfig::spr_hbm();
        let sim = MulticoreGemmSimulation::new(machine.clone(), CacheConfig::spr());
        let _ = sim.run_partitioned(&model(512.0, 40.0), &vec![0usize; machine.cores]);
    }
}
