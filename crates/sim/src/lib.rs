//! Mechanistic simulator of an SPR-like server for compressed GeMMs.
//!
//! The paper evaluates DECA on an internal Sniper-based simulator. Sniper is
//! a *mechanistic* (interval) model rather than an RTL-accurate one; this
//! crate follows the same philosophy at tile granularity. A compressed GeMM
//! is a stream of weight tiles flowing through three resources per core —
//! the memory system, a decompression engine (the core's AVX SIMD ports or a
//! DECA PE) and the TMUL matrix unit — plus the core's issue/commit
//! bandwidth. The simulator tracks, cycle by cycle and tile by tile, when
//! each of those resources is busy, which dependencies serialize them
//! (fences, exposed communication latencies, missing prefetch) and which
//! overlap (double buffering, TEPL).
//!
//! What this models faithfully:
//! * steady-state throughput and which resource saturates (the quantities
//!   behind Figs. 12–15 and Table 3),
//! * latency exposure when tiles are fetched without prefetching, when the
//!   decompressed tile takes the L2 round-trip instead of the TOut
//!   registers, and when fences serialize iterations (Fig. 17),
//! * bandwidth sharing across symmetric cores (Fig. 14),
//! * trace-driven replay of *actual* compressed matrices: [`MemoryTrace`]
//!   streams a real [`deca_compress::CompressedMatrix`] through a pluggable
//!   decompression engine and records the per-tile fetch footprint, which
//!   [`GemmSimulation::run_trace`] replays so every tile pays for its own
//!   (lumpy) bytes instead of the scheme average.
//!
//! What it abstracts away: per-µop out-of-order scheduling, cache
//! replacement (weight streams have no reuse), and NoC topology beyond a hop
//! latency.
//!
//! # Example
//!
//! ```
//! use deca_roofsurface::MachineConfig;
//! use deca_sim::{CacheConfig, GemmSimulation, InvocationModel, PrefetchConfig, TileExecModel};
//!
//! let machine = MachineConfig::spr_hbm();
//! let model = TileExecModel {
//!     bytes_per_tile: 512.0,
//!     decompress_cycles_per_tile: 64.0,
//!     core_cycles_per_tile: 40.0,
//!     tmul_cycles_per_tile: 16.0,
//!     exposed_pre_latency: 0.0,
//!     exposed_post_latency: 0.0,
//!     invocation: InvocationModel::Overlapped,
//!     buffering_depth: 2,
//!     prefetch: PrefetchConfig::stream(8),
//! };
//! let stats = GemmSimulation::new(machine, CacheConfig::spr())
//!     .run(&model, 2000);
//! assert!(stats.tiles_processed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod exec;
mod memory;
mod multicore;
mod prefetch;
mod stats;
mod trace;

pub use cache::CacheConfig;
pub use exec::{GemmSimulation, InvocationModel, TileExecModel};
pub use memory::MemoryController;
pub use multicore::MulticoreGemmSimulation;
pub use prefetch::{PrefetchConfig, PrefetchKind};
pub use stats::{GemmStats, UtilizationReport};
pub use trace::{MemoryTrace, TraceEvent};

#[cfg(test)]
mod tests {
    use super::*;
    use deca_roofsurface::MachineConfig;

    /// A fully overlapped, well-prefetched kernel must be bound by its
    /// slowest resource and reach that resource's analytic throughput to
    /// within a few percent.
    #[test]
    fn steady_state_matches_bottleneck_throughput() {
        let machine = MachineConfig::spr_hbm();
        let cache = CacheConfig::spr();
        // Memory-bound case: 1024 B/tile at 850 GB/s shared by 56 cores.
        let model = TileExecModel {
            bytes_per_tile: 1024.0,
            decompress_cycles_per_tile: 8.0,
            core_cycles_per_tile: 8.0,
            tmul_cycles_per_tile: 16.0,
            exposed_pre_latency: 0.0,
            exposed_post_latency: 0.0,
            invocation: InvocationModel::Overlapped,
            buffering_depth: 2,
            prefetch: PrefetchConfig::stream(16),
        };
        let stats = GemmSimulation::new(machine.clone(), cache).run(&model, 4000);
        let analytic_tps = machine.memory_bandwidth_bytes_per_sec() / 1024.0;
        let measured_tps = stats.tiles_per_second(&machine);
        let rel = (measured_tps - analytic_tps).abs() / analytic_tps;
        assert!(
            rel < 0.05,
            "measured {measured_tps:.3e} vs analytic {analytic_tps:.3e}"
        );
        assert!(stats.memory_utilization() > 0.9);
    }

    /// A decompression-bound kernel is limited by decompress cycles per
    /// tile per core.
    #[test]
    fn vector_bound_kernel_is_limited_by_decompressor() {
        let machine = MachineConfig::spr_hbm();
        let model = TileExecModel {
            bytes_per_tile: 90.0, // highly compressed
            decompress_cycles_per_tile: 72.0,
            core_cycles_per_tile: 30.0,
            tmul_cycles_per_tile: 16.0,
            exposed_pre_latency: 0.0,
            exposed_post_latency: 0.0,
            invocation: InvocationModel::Overlapped,
            buffering_depth: 2,
            prefetch: PrefetchConfig::stream(16),
        };
        let stats = GemmSimulation::new(machine.clone(), CacheConfig::spr()).run(&model, 4000);
        let analytic_tps = machine.cores as f64 * machine.frequency_hz() / 72.0;
        let measured = stats.tiles_per_second(&machine);
        assert!((measured - analytic_tps).abs() / analytic_tps < 0.05);
        assert!(stats.decompress_utilization() > 0.9);
        assert!(stats.memory_utilization() < 0.3);
    }
}
