//! Property tests for the sharded estimator (`deca_llm::parallel`).
//!
//! The anchor property: a `TP=1 × PP=1` plan over a zero-cost interconnect
//! is *the same model* as the unsharded [`InferenceEstimator`] — every
//! latency component matches bit for bit across schemes, engines, batch
//! sizes and context lengths. Everything the sharded view adds (per-socket
//! shard shapes, collectives, stage partitions) must therefore be a pure
//! extension, never a re-derivation that drifts.

use deca_compress::CompressionScheme;
use deca_kernels::Engine;
use deca_llm::{
    footprint, parallel, InferenceEstimator, InterconnectModel, LlmModel, ShardSpec,
    ShardedEstimator,
};
use deca_roofsurface::MachineConfig;
use proptest::prelude::*;

fn scheme(index: u32) -> CompressionScheme {
    match index % 5 {
        0 => CompressionScheme::bf16_dense(),
        1 => CompressionScheme::bf8_dense(),
        2 => CompressionScheme::bf8_sparse(0.2),
        3 => CompressionScheme::bf8_sparse(0.05),
        _ => CompressionScheme::mxfp4(),
    }
}

fn model(index: u32) -> LlmModel {
    if index.is_multiple_of(2) {
        LlmModel::llama2_70b()
    } else {
        LlmModel::opt_66b()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// TP=1 / PP=1 with a zero-cost interconnect reproduces the unsharded
    /// estimator's numbers exactly (bitwise), for decode and prefill.
    #[test]
    fn single_socket_plan_is_the_unsharded_estimator(
        scheme_index in 0u32..5,
        model_index in 0u32..2,
        deca in proptest::prop::bool::ANY,
        batch in 1usize..17,
        context in 0usize..4096,
        prompt in 1usize..768,
    ) {
        let machine = MachineConfig::spr_hbm();
        let engine = if deca { Engine::deca_default() } else { Engine::software() };
        let scheme = scheme(scheme_index);
        let model = model(model_index);
        let unsharded = InferenceEstimator::new(machine.clone());
        let sharded = ShardedEstimator::new(
            machine,
            ShardSpec::single(),
            InterconnectModel::zero_cost(),
        );

        let base = unsharded.next_token(&model, &scheme, engine, batch, context);
        let shard = sharded.next_token(&model, &scheme, engine, batch, context);
        prop_assert_eq!(shard.fc_seconds.to_bits(), base.fc_seconds.to_bits());
        prop_assert_eq!(
            shard.attention_seconds.to_bits(),
            base.attention_seconds.to_bits()
        );
        prop_assert_eq!(shard.other_seconds.to_bits(), base.other_seconds.to_bits());
        prop_assert_eq!(shard.allreduce_seconds, 0.0);
        prop_assert_eq!(shard.transfer_seconds, 0.0);
        prop_assert_eq!(
            shard.total_seconds().to_bits(),
            base.total_seconds().to_bits()
        );
        prop_assert_eq!(&shard.decompress_engine, &base.decompress_engine);

        let base_p = unsharded.prefill(&model, &scheme, engine, prompt, context);
        let shard_p = sharded.prefill(&model, &scheme, engine, prompt, context);
        prop_assert_eq!(shard_p.fc_seconds.to_bits(), base_p.fc_seconds.to_bits());
        prop_assert_eq!(
            shard_p.attention_seconds.to_bits(),
            base_p.attention_seconds.to_bits()
        );
        prop_assert_eq!(
            shard_p.total_seconds().to_bits(),
            base_p.total_seconds().to_bits()
        );
    }

    /// The single-socket footprint view agrees with `footprint` exactly,
    /// and sharding never *increases* the per-socket weight bytes.
    #[test]
    fn sharded_footprints_are_consistent(
        scheme_index in 0u32..5,
        model_index in 0u32..2,
        tp_exp in 0u32..4,
        pp in 1usize..5,
    ) {
        let scheme = scheme(scheme_index);
        let model = model(model_index);
        let single = ShardSpec::single();
        prop_assert_eq!(
            parallel::sharded_max_kv_tokens(&model, &scheme, &single),
            footprint::max_kv_tokens(&model, &scheme)
        );
        let spec = ShardSpec::new(1 << tp_exp, pp);
        let sharded = parallel::sharded_weight_bytes_per_socket(&model, &scheme, &spec);
        let unsharded = footprint::model_footprint_bytes(&model, &scheme);
        prop_assert!(sharded <= unsharded * 1.0001, "{spec}: {sharded} > {unsharded}");
        // A plan with a budget can hold at least that many tokens.
        if let Some(budget) = parallel::sharded_max_kv_tokens(&model, &scheme, &spec) {
            let budget = usize::try_from(budget).unwrap();
            prop_assert!(parallel::sharded_fits_in_hbm_with_kv(
                &model, &scheme, &spec, budget, 1
            ));
        }
    }
}
