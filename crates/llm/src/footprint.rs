//! Model memory footprints per compression scheme (§8).
//!
//! The paper notes that the uncompressed BF16 model, Q16 at 50 % density and
//! dense Q8 do not fit in the 64 GB of on-package HBM, so those
//! configurations are simulated with a larger HBM capacity. This module
//! reproduces that accounting.

use deca_compress::{CompressionScheme, TILE_ELEMS};

use crate::LlmModel;

/// HBM capacity of the evaluated SPR part in bytes (64 GB).
pub const HBM_CAPACITY_BYTES: u64 = 64 * 1024 * 1024 * 1024;

/// Bytes per weight parameter under a compression scheme (including the
/// bitmask and scale-factor overheads).
#[must_use]
pub fn bytes_per_parameter(scheme: &CompressionScheme) -> f64 {
    scheme.expected_tile_bytes() / TILE_ELEMS as f64
}

/// Total weight-memory footprint of a model under a scheme, in bytes.
/// The embedding table stays in BF16 (it is not an FC-layer weight).
#[must_use]
pub fn model_footprint_bytes(model: &LlmModel, scheme: &CompressionScheme) -> f64 {
    let fc = model.fc_params() as f64 * bytes_per_parameter(scheme);
    let embeddings = (model.total_params() - model.fc_params()) as f64 * 2.0;
    fc + embeddings
}

/// Whether a model compressed with `scheme` fits in the 64 GB HBM.
#[must_use]
pub fn fits_in_hbm(model: &LlmModel, scheme: &CompressionScheme) -> bool {
    model_footprint_bytes(model, scheme) <= HBM_CAPACITY_BYTES as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_per_parameter_tracks_the_scheme() {
        assert_eq!(bytes_per_parameter(&CompressionScheme::bf16_dense()), 2.0);
        assert_eq!(bytes_per_parameter(&CompressionScheme::bf8_dense()), 1.0);
        assert!((bytes_per_parameter(&CompressionScheme::mxfp4()) - 0.53125).abs() < 1e-9);
        // Q8 at 5 %: 0.05 + 1/8 bitmask bytes per parameter.
        assert!((bytes_per_parameter(&CompressionScheme::bf8_sparse(0.05)) - 0.175).abs() < 1e-9);
    }

    #[test]
    fn paper_capacity_observations_hold() {
        // §8: BF16, Q16_50% and Q8_100% do not fit in 64 GB of HBM; the
        // compressed schemes evaluated with DECA do.
        let llama = LlmModel::llama2_70b();
        assert!(!fits_in_hbm(&llama, &CompressionScheme::bf16_dense()));
        assert!(!fits_in_hbm(&llama, &CompressionScheme::bf16_sparse(0.5)));
        assert!(!fits_in_hbm(&llama, &CompressionScheme::bf8_dense()));
        assert!(fits_in_hbm(&llama, &CompressionScheme::mxfp4()));
        assert!(fits_in_hbm(&llama, &CompressionScheme::bf8_sparse(0.2)));
        assert!(fits_in_hbm(&llama, &CompressionScheme::bf8_sparse(0.05)));

        let opt = LlmModel::opt_66b();
        assert!(!fits_in_hbm(&opt, &CompressionScheme::bf16_dense()));
        assert!(fits_in_hbm(&opt, &CompressionScheme::mxfp4()));
    }

    #[test]
    fn footprints_are_ordered_by_compression_factor() {
        let llama = LlmModel::llama2_70b();
        let bf16 = model_footprint_bytes(&llama, &CompressionScheme::bf16_dense());
        let q8 = model_footprint_bytes(&llama, &CompressionScheme::bf8_dense());
        let q4 = model_footprint_bytes(&llama, &CompressionScheme::mxfp4());
        let q8_5 = model_footprint_bytes(&llama, &CompressionScheme::bf8_sparse(0.05));
        assert!(bf16 > q8 && q8 > q4 && q4 > q8_5);
        // The BF16 footprint is roughly 2 bytes per parameter.
        assert!((bf16 / llama.total_params() as f64 - 2.0).abs() < 0.01);
    }
}
