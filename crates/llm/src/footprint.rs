//! Model memory footprints per compression scheme (§8).
//!
//! The paper notes that the uncompressed BF16 model, Q16 at 50 % density and
//! dense Q8 do not fit in the 64 GB of on-package HBM, so those
//! configurations are simulated with a larger HBM capacity. This module
//! reproduces that accounting.

use deca_compress::{CompressionScheme, TILE_ELEMS};

use crate::LlmModel;

/// HBM capacity of the evaluated SPR part in bytes (64 GB).
pub const HBM_CAPACITY_BYTES: u64 = 64 * 1024 * 1024 * 1024;

/// Bytes per weight parameter under a compression scheme (including the
/// bitmask and scale-factor overheads).
#[must_use]
pub fn bytes_per_parameter(scheme: &CompressionScheme) -> f64 {
    scheme.expected_tile_bytes() / TILE_ELEMS as f64
}

/// Total weight-memory footprint of a model under a scheme, in bytes.
/// The embedding table stays in BF16 (it is not an FC-layer weight).
#[must_use]
pub fn model_footprint_bytes(model: &LlmModel, scheme: &CompressionScheme) -> f64 {
    let fc = model.fc_params() as f64 * bytes_per_parameter(scheme);
    let embeddings = (model.total_params() - model.fc_params()) as f64 * 2.0;
    fc + embeddings
}

/// Whether a model compressed with `scheme` fits in the 64 GB HBM
/// (weights only — see [`fits_in_hbm_with_kv`] for the serving-time check
/// that includes the KV cache).
#[must_use]
pub fn fits_in_hbm(model: &LlmModel, scheme: &CompressionScheme) -> bool {
    model_footprint_bytes(model, scheme) <= HBM_CAPACITY_BYTES as f64
}

/// Bytes of KV cache held for one sequence at `context_tokens` (keys and
/// values of every layer, BF16).
#[must_use]
pub fn kv_cache_bytes_per_sequence(model: &LlmModel, context_tokens: usize) -> u64 {
    (model.layers() * model.layer().kv_bytes_per_token() * context_tokens) as u64
}

/// Total KV-cache bytes for `batch` sequences at a uniform context length.
#[must_use]
pub fn kv_cache_bytes(model: &LlmModel, context_tokens: usize, batch: usize) -> u64 {
    kv_cache_bytes_per_sequence(model, context_tokens) * batch as u64
}

/// HBM bytes left for the KV cache (and activations) after the weights are
/// resident. Negative when the weights alone overflow the 64 GB.
#[must_use]
pub fn hbm_headroom_bytes(model: &LlmModel, scheme: &CompressionScheme) -> f64 {
    HBM_CAPACITY_BYTES as f64 - model_footprint_bytes(model, scheme)
}

/// Whether the weights *and* the KV cache of `batch` sequences at
/// `context_tokens` fit in the 64 GB HBM together.
#[must_use]
pub fn fits_in_hbm_with_kv(
    model: &LlmModel,
    scheme: &CompressionScheme,
    context_tokens: usize,
    batch: usize,
) -> bool {
    kv_cache_bytes(model, context_tokens, batch) as f64 <= hbm_headroom_bytes(model, scheme)
}

/// The total number of KV-cache token slots (summed across all resident
/// sequences) the HBM headroom sustains, or `None` when the weights alone do
/// not fit. This is the KV budget the serving scheduler in `deca-serve`
/// admits against.
///
/// Degenerate models with zero per-token KV cost (zero layers, or zero KV
/// heads via [`LlmModel::new`]) also return `None`: dividing the headroom
/// by `0.0` would produce `inf`, which a `u64` cast saturates into a bogus
/// "unbounded" scheduler budget.
#[must_use]
pub fn max_kv_tokens(model: &LlmModel, scheme: &CompressionScheme) -> Option<u64> {
    let headroom = hbm_headroom_bytes(model, scheme);
    if headroom < 0.0 {
        return None;
    }
    let per_token = (model.layers() * model.layer().kv_bytes_per_token()) as f64;
    if per_token <= 0.0 {
        return None;
    }
    Some((headroom / per_token) as u64)
}

/// The number of whole KV-cache *blocks* of `block_size` tokens the HBM
/// headroom sustains — the pool size of `deca-serve`'s paged allocator —
/// or `None` when the weights alone do not fit. Rounds down: a partial
/// block cannot be allocated.
///
/// # Panics
///
/// Panics if `block_size` is zero.
#[must_use]
pub fn max_kv_blocks(
    model: &LlmModel,
    scheme: &CompressionScheme,
    block_size: usize,
) -> Option<u64> {
    assert!(block_size > 0, "block size must be positive");
    max_kv_tokens(model, scheme).map(|tokens| tokens / block_size as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_per_parameter_tracks_the_scheme() {
        assert_eq!(bytes_per_parameter(&CompressionScheme::bf16_dense()), 2.0);
        assert_eq!(bytes_per_parameter(&CompressionScheme::bf8_dense()), 1.0);
        assert!((bytes_per_parameter(&CompressionScheme::mxfp4()) - 0.53125).abs() < 1e-9);
        // Q8 at 5 %: 0.05 + 1/8 bitmask bytes per parameter.
        assert!((bytes_per_parameter(&CompressionScheme::bf8_sparse(0.05)) - 0.175).abs() < 1e-9);
    }

    #[test]
    fn paper_capacity_observations_hold() {
        // §8: BF16, Q16_50% and Q8_100% do not fit in 64 GB of HBM; the
        // compressed schemes evaluated with DECA do.
        let llama = LlmModel::llama2_70b();
        assert!(!fits_in_hbm(&llama, &CompressionScheme::bf16_dense()));
        assert!(!fits_in_hbm(&llama, &CompressionScheme::bf16_sparse(0.5)));
        assert!(!fits_in_hbm(&llama, &CompressionScheme::bf8_dense()));
        assert!(fits_in_hbm(&llama, &CompressionScheme::mxfp4()));
        assert!(fits_in_hbm(&llama, &CompressionScheme::bf8_sparse(0.2)));
        assert!(fits_in_hbm(&llama, &CompressionScheme::bf8_sparse(0.05)));

        let opt = LlmModel::opt_66b();
        assert!(!fits_in_hbm(&opt, &CompressionScheme::bf16_dense()));
        assert!(fits_in_hbm(&opt, &CompressionScheme::mxfp4()));
    }

    #[test]
    fn kv_cache_accounting_scales_with_context_and_batch() {
        let llama = LlmModel::llama2_70b();
        // 80 layers x 4096 B/token (GQA) = 327 680 B per context token.
        assert_eq!(kv_cache_bytes_per_sequence(&llama, 1), 327_680);
        assert_eq!(
            kv_cache_bytes(&llama, 4096, 16),
            327_680 * 4096 * 16 // ~21.5 GB: a real bite out of the headroom
        );
        assert_eq!(kv_cache_bytes(&llama, 0, 16), 0);
    }

    #[test]
    fn kv_cache_participates_in_the_hbm_fit_check() {
        let llama = LlmModel::llama2_70b();
        let q8_5 = CompressionScheme::bf8_sparse(0.05);
        // Weights fit with lots of headroom...
        assert!(fits_in_hbm_with_kv(&llama, &q8_5, 4096, 16));
        // ...but a large enough resident KV set overflows even Q8_5%.
        let budget = max_kv_tokens(&llama, &q8_5).expect("weights fit");
        assert!(budget > 100_000, "budget {budget}");
        assert!(!fits_in_hbm_with_kv(&llama, &q8_5, budget as usize + 1, 1));
        assert!(fits_in_hbm_with_kv(&llama, &q8_5, budget as usize, 1));

        // Headroom is consistent with the budget: budget tokens eat it all.
        let headroom = hbm_headroom_bytes(&llama, &q8_5);
        let used = kv_cache_bytes(&llama, budget as usize, 1) as f64;
        assert!(used <= headroom && headroom - used < 327_680.0);
    }

    #[test]
    fn models_that_do_not_fit_have_no_kv_budget() {
        let llama = LlmModel::llama2_70b();
        assert_eq!(
            max_kv_tokens(&llama, &CompressionScheme::bf16_dense()),
            None
        );
        assert!(hbm_headroom_bytes(&llama, &CompressionScheme::bf16_dense()) < 0.0);
        assert!(!fits_in_hbm_with_kv(
            &llama,
            &CompressionScheme::bf16_dense(),
            0,
            1
        ));
    }

    /// Regression: a degenerate zero-layer model has zero per-token KV
    /// cost; before the guard, `headroom / 0.0 == inf` and the `u64` cast
    /// saturated it into a bogus "unbounded" scheduler budget.
    #[test]
    fn degenerate_models_with_zero_kv_cost_have_no_budget() {
        let zero_layers = LlmModel::new("degenerate", 0, *LlmModel::llama2_70b().layer(), 32_000);
        let scheme = CompressionScheme::bf8_sparse(0.05);
        // The (tiny) footprint fits, so the headroom is positive...
        assert!(hbm_headroom_bytes(&zero_layers, &scheme) > 0.0);
        // ...but the per-token KV cost is zero: no meaningful budget exists.
        assert_eq!(max_kv_tokens(&zero_layers, &scheme), None);
    }

    #[test]
    fn block_budget_is_the_token_budget_in_whole_blocks() {
        let llama = LlmModel::llama2_70b();
        let q8_5 = CompressionScheme::bf8_sparse(0.05);
        let tokens = max_kv_tokens(&llama, &q8_5).expect("fits");
        let blocks = max_kv_blocks(&llama, &q8_5, 16).expect("fits");
        assert_eq!(blocks, tokens / 16);
        // Block size 1 degenerates to the token budget.
        assert_eq!(max_kv_blocks(&llama, &q8_5, 1), Some(tokens));
        // No weights fit ⇒ no block pool either.
        assert_eq!(
            max_kv_blocks(&llama, &CompressionScheme::bf16_dense(), 16),
            None
        );
    }

    #[test]
    fn footprints_are_ordered_by_compression_factor() {
        let llama = LlmModel::llama2_70b();
        let bf16 = model_footprint_bytes(&llama, &CompressionScheme::bf16_dense());
        let q8 = model_footprint_bytes(&llama, &CompressionScheme::bf8_dense());
        let q4 = model_footprint_bytes(&llama, &CompressionScheme::mxfp4());
        let q8_5 = model_footprint_bytes(&llama, &CompressionScheme::bf8_sparse(0.05));
        assert!(bf16 > q8 && q8 > q4 && q4 > q8_5);
        // The BF16 footprint is roughly 2 bytes per parameter.
        assert!((bf16 / llama.total_params() as f64 - 2.0).abs() < 0.01);
    }
}
