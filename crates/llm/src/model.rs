//! LLM architectures: Llama2-70B and OPT-66B (§8).

use deca_kernels::GemmShape;

/// The feed-forward style of a transformer block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FfnKind {
    /// Gated SwiGLU feed-forward (Llama): gate, up and down projections.
    SwiGlu,
    /// Classic two-matrix feed-forward (OPT): fc1 and fc2.
    Mlp,
}

/// Geometry of one transformer layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LayerGeometry {
    /// Model (hidden) dimension.
    pub hidden: usize,
    /// Feed-forward intermediate dimension.
    pub ffn_hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Key/value heads (grouped-query attention when smaller than `heads`).
    pub kv_heads: usize,
    /// Dimension of each head.
    pub head_dim: usize,
    /// Feed-forward style.
    pub ffn: FfnKind,
}

impl LayerGeometry {
    /// Key/value projection width (`kv_heads · head_dim`).
    #[must_use]
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim
    }

    /// The FC-layer GeMM shapes of one transformer layer at batch size
    /// `batch` during the generation phase (one token per sequence).
    #[must_use]
    pub fn fc_gemms(&self, batch: usize) -> Vec<GemmShape> {
        let h = self.hidden;
        let mut shapes = vec![
            // Q projection.
            GemmShape::new(batch, h, self.heads * self.head_dim),
            // K and V projections (possibly grouped-query, i.e. narrower).
            GemmShape::new(batch, h, self.kv_dim()),
            GemmShape::new(batch, h, self.kv_dim()),
            // Output projection.
            GemmShape::new(batch, self.heads * self.head_dim, h),
        ];
        match self.ffn {
            FfnKind::SwiGlu => {
                shapes.push(GemmShape::new(batch, h, self.ffn_hidden)); // gate
                shapes.push(GemmShape::new(batch, h, self.ffn_hidden)); // up
                shapes.push(GemmShape::new(batch, self.ffn_hidden, h)); // down
            }
            FfnKind::Mlp => {
                shapes.push(GemmShape::new(batch, h, self.ffn_hidden)); // fc1
                shapes.push(GemmShape::new(batch, self.ffn_hidden, h)); // fc2
            }
        }
        shapes
    }

    /// The largest FC-layer GeMM of one transformer layer at batch size
    /// `batch`.
    ///
    /// Never panics: [`LayerGeometry::fc_gemms`] always emits the four
    /// attention projections before the feed-forward shapes, so the fold is
    /// seeded with the Q projection instead of unwrapping an
    /// `Iterator::max` that is empty only in an unreachable state.
    #[must_use]
    pub fn largest_fc_gemm(&self, batch: usize) -> GemmShape {
        let q_projection = GemmShape::new(batch, self.hidden, self.heads * self.head_dim);
        self.fc_gemms(batch)
            .into_iter()
            .fold(q_projection, |best, shape| {
                if shape.weight_elements() > best.weight_elements() {
                    shape
                } else {
                    best
                }
            })
    }

    /// FC-layer weight parameters of one layer.
    #[must_use]
    pub fn fc_params(&self) -> usize {
        self.fc_gemms(1)
            .iter()
            .map(GemmShape::weight_elements)
            .sum()
    }

    /// Bytes of KV cache appended per token per sequence (BF16 keys and
    /// values).
    #[must_use]
    pub fn kv_bytes_per_token(&self) -> usize {
        2 * self.kv_dim() * 2
    }
}

/// A full decoder-only LLM.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LlmModel {
    name: String,
    layers: usize,
    layer: LayerGeometry,
    vocab: usize,
}

impl LlmModel {
    /// Builds a model from an explicit geometry. The stock inventories
    /// ([`LlmModel::llama2_70b`], [`LlmModel::opt_66b`]) cover the paper's
    /// evaluation; this constructor exists for sharded per-socket views
    /// (`deca_llm::parallel`), what-if geometries and degenerate-input
    /// tests. No validation is performed here — a zero-layer or
    /// zero-KV-head model is representable, and downstream consumers
    /// (e.g. [`crate::footprint::max_kv_tokens`]) must guard against it.
    #[must_use]
    pub fn new(name: impl Into<String>, layers: usize, layer: LayerGeometry, vocab: usize) -> Self {
        LlmModel {
            name: name.into(),
            layers,
            layer,
            vocab,
        }
    }

    /// Llama2-70B: 80 layers, 8192 hidden, 28672 FFN, 64 heads with 8 KV
    /// heads (GQA), 32 k vocabulary.
    #[must_use]
    pub fn llama2_70b() -> Self {
        LlmModel {
            name: "Llama2-70B".to_string(),
            layers: 80,
            layer: LayerGeometry {
                hidden: 8192,
                ffn_hidden: 28672,
                heads: 64,
                kv_heads: 8,
                head_dim: 128,
                ffn: FfnKind::SwiGlu,
            },
            vocab: 32_000,
        }
    }

    /// Llama2-7B: 32 layers, 4096 hidden, 11008 FFN, 32 heads (full MHA),
    /// 32 k vocabulary — the stock *draft* model for speculative decoding
    /// ([`crate::DraftSpec`]): same family and tokenizer as
    /// [`LlmModel::llama2_70b`], a tenth of the weights.
    #[must_use]
    pub fn llama2_7b() -> Self {
        LlmModel {
            name: "Llama2-7B".to_string(),
            layers: 32,
            layer: LayerGeometry {
                hidden: 4096,
                ffn_hidden: 11_008,
                heads: 32,
                kv_heads: 32,
                head_dim: 128,
                ffn: FfnKind::SwiGlu,
            },
            vocab: 32_000,
        }
    }

    /// OPT-66B: 64 layers, 9216 hidden, 36864 FFN, 72 heads, 50 k vocabulary.
    #[must_use]
    pub fn opt_66b() -> Self {
        LlmModel {
            name: "OPT-66B".to_string(),
            layers: 64,
            layer: LayerGeometry {
                hidden: 9216,
                ffn_hidden: 36_864,
                heads: 72,
                kv_heads: 72,
                head_dim: 128,
                ffn: FfnKind::Mlp,
            },
            vocab: 50_272,
        }
    }

    /// Model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of transformer layers.
    #[must_use]
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Per-layer geometry.
    #[must_use]
    pub fn layer(&self) -> &LayerGeometry {
        &self.layer
    }

    /// Vocabulary size.
    #[must_use]
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// All FC-layer GeMMs executed for one generated token at batch size
    /// `batch` (every layer, plus the LM-head projection).
    #[must_use]
    pub fn fc_gemms_per_token(&self, batch: usize) -> Vec<GemmShape> {
        let mut shapes = Vec::new();
        for _ in 0..self.layers {
            shapes.extend(self.layer.fc_gemms(batch));
        }
        // LM head: hidden -> vocabulary logits.
        shapes.push(GemmShape::new(batch, self.layer.hidden, self.vocab));
        shapes
    }

    /// The largest FC-layer GeMM executed for one token at batch size
    /// `batch` (the LM-head projection included). Like
    /// [`LayerGeometry::largest_fc_gemm`], this cannot panic: the candidate
    /// list is non-empty by construction.
    #[must_use]
    pub fn largest_fc_gemm(&self, batch: usize) -> GemmShape {
        let lm_head = GemmShape::new(batch, self.layer.hidden, self.vocab);
        let per_layer = self.layer.largest_fc_gemm(batch);
        if per_layer.weight_elements() > lm_head.weight_elements() {
            per_layer
        } else {
            lm_head
        }
    }

    /// Total FC-layer weight parameters (the compressible part of the
    /// model).
    #[must_use]
    pub fn fc_params(&self) -> usize {
        self.layers * self.layer.fc_params() + self.layer.hidden * self.vocab
    }

    /// Total parameters including the embedding table.
    #[must_use]
    pub fn total_params(&self) -> usize {
        self.fc_params() + self.vocab * self.layer.hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama2_70b_parameter_count_is_about_70b() {
        let m = LlmModel::llama2_70b();
        let params = m.total_params() as f64;
        assert!(
            (66e9..72e9).contains(&params),
            "Llama2-70B parameter count {params:.3e}"
        );
        assert_eq!(m.layers(), 80);
        assert_eq!(m.layer().kv_dim(), 1024);
    }

    #[test]
    fn llama2_7b_parameter_count_is_about_7b() {
        let m = LlmModel::llama2_7b();
        let params = m.total_params() as f64;
        assert!(
            (6e9..7.5e9).contains(&params),
            "Llama2-7B parameter count {params:.3e}"
        );
        assert_eq!(m.layers(), 32);
        // Full MHA: every head keeps its own KV.
        assert_eq!(m.layer().kv_dim(), 4096);
    }

    #[test]
    fn opt_66b_parameter_count_is_about_66b() {
        let m = LlmModel::opt_66b();
        let params = m.total_params() as f64;
        assert!(
            (63e9..69e9).contains(&params),
            "OPT-66B parameter count {params:.3e}"
        );
        assert_eq!(m.layers(), 64);
    }

    #[test]
    fn llama_layer_has_seven_fc_gemms_and_opt_six() {
        assert_eq!(LlmModel::llama2_70b().layer().fc_gemms(1).len(), 7);
        assert_eq!(LlmModel::opt_66b().layer().fc_gemms(1).len(), 6);
    }

    #[test]
    fn fc_gemm_shapes_use_batch_as_n() {
        let shapes = LlmModel::llama2_70b().layer().fc_gemms(16);
        assert!(shapes.iter().all(|s| s.n == 16));
        // The largest FC GeMMs of Llama2-70B are hidden x ffn: 8192 x 28672
        // ≈ 235 M parameters — the "large FC layers" the paper's
        // microbenchmark mimics.
        let largest = LlmModel::llama2_70b().layer().largest_fc_gemm(16);
        assert_eq!(largest.weight_elements(), 8192 * 28672);
        assert_eq!(largest.n, 16);
    }

    #[test]
    fn largest_fc_gemm_is_the_true_maximum_for_both_models() {
        for model in [LlmModel::llama2_70b(), LlmModel::opt_66b()] {
            for batch in [1usize, 4, 16] {
                // Several shapes can tie on weight elements (gate/up/down of
                // SwiGLU), so compare the maximum weight count, not shapes.
                let per_layer = model.layer().largest_fc_gemm(batch);
                let by_scan = model
                    .layer()
                    .fc_gemms(batch)
                    .into_iter()
                    .map(|s| s.weight_elements())
                    .max();
                assert_eq!(
                    by_scan,
                    Some(per_layer.weight_elements()),
                    "{}",
                    model.name()
                );

                let overall = model.largest_fc_gemm(batch);
                let by_scan = model
                    .fc_gemms_per_token(batch)
                    .into_iter()
                    .map(|s| s.weight_elements())
                    .max();
                assert_eq!(by_scan, Some(overall.weight_elements()), "{}", model.name());
            }
        }
        // For OPT the LM head (9216 x 50272) beats the FFN (9216 x 36864).
        let opt = LlmModel::opt_66b();
        assert_eq!(opt.largest_fc_gemm(1).weight_elements(), 9216 * 50_272);
    }

    #[test]
    fn per_token_gemm_list_covers_all_layers_plus_lm_head() {
        let m = LlmModel::llama2_70b();
        assert_eq!(m.fc_gemms_per_token(1).len(), 80 * 7 + 1);
        let o = LlmModel::opt_66b();
        assert_eq!(o.fc_gemms_per_token(4).len(), 64 * 6 + 1);
    }

    #[test]
    fn kv_bytes_reflect_grouped_query_attention() {
        // Llama2-70B uses GQA: only 8 KV heads of 128 dims = 1024 values for
        // K and V each, 2 bytes per value.
        assert_eq!(LlmModel::llama2_70b().layer().kv_bytes_per_token(), 4096);
        // OPT has full multi-head KV.
        assert_eq!(LlmModel::opt_66b().layer().kv_bytes_per_token(), 36864);
    }
}
