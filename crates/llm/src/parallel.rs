//! Multi-socket sharded inference: tensor/pipeline parallelism over an
//! explicit interconnect model.
//!
//! One SPR socket tops out at 64 GB of HBM, and §8's capacity observations
//! show exactly which Table 4 configurations that excludes (uncompressed
//! BF16, Q16_50%, dense Q8 — and *any* scheme once the KV working set grows
//! past the post-weights headroom). This module answers the production
//! question the single-socket estimator cannot: what does a
//! (scheme × engine × TP × PP) deployment cost in latency and per-socket
//! memory?
//!
//! * [`ShardSpec`] — Megatron-style sharding: tensor parallelism splits
//!   every FC GeMM's output dimension (attention heads, KV heads, FFN
//!   columns and the LM-head vocabulary) across `tensor_parallel` sockets;
//!   pipeline parallelism partitions the layer stack into
//!   `pipeline_parallel` contiguous stages.
//! * [`InterconnectModel`] — per-link bandwidth and latency, priced as a
//!   ring all-reduce per tensor-parallel GeMM and a point-to-point
//!   activation transfer per pipeline-stage boundary.
//! * [`ShardedEstimator`] — wraps [`InferenceEstimator`], reusing its exact
//!   per-tile arithmetic on the per-socket shard shapes, so a
//!   `TP=1 × PP=1` plan with a zero-cost interconnect reproduces the
//!   unsharded numbers bit for bit (property-tested).
//! * [`sharded_max_kv_tokens`] and friends — per-socket weight/KV
//!   footprints and the fleet-wide KV-token budget under a plan (the
//!   admission budget `deca-serve` uses for sharded replicas).

use deca_compress::CompressionScheme;
use deca_kernels::{Engine, GemmShape};
use deca_roofsurface::MachineConfig;

use crate::footprint::{bytes_per_parameter, HBM_CAPACITY_BYTES};
use crate::{InferenceEstimator, LayerGeometry, LlmModel};

/// How a model is sharded across sockets: `tensor_parallel × pipeline_parallel`
/// sockets in total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ShardSpec {
    /// Tensor-parallel degree: every FC GeMM's output dimension is split
    /// this many ways (and the KV heads with it).
    pub tensor_parallel: usize,
    /// Pipeline-parallel degree: the layer stack is partitioned into this
    /// many contiguous stages.
    pub pipeline_parallel: usize,
}

impl ShardSpec {
    /// A sharding plan.
    ///
    /// # Panics
    ///
    /// Panics if either degree is zero.
    #[must_use]
    pub fn new(tensor_parallel: usize, pipeline_parallel: usize) -> Self {
        assert!(
            tensor_parallel > 0 && pipeline_parallel > 0,
            "parallelism degrees must be positive"
        );
        ShardSpec {
            tensor_parallel,
            pipeline_parallel,
        }
    }

    /// The unsharded single-socket plan.
    #[must_use]
    pub fn single() -> Self {
        ShardSpec::new(1, 1)
    }

    /// Pure tensor parallelism over `degree` sockets.
    #[must_use]
    pub fn tp(degree: usize) -> Self {
        ShardSpec::new(degree, 1)
    }

    /// Pure pipeline parallelism over `degree` stages.
    #[must_use]
    pub fn pp(degree: usize) -> Self {
        ShardSpec::new(1, degree)
    }

    /// Total sockets the plan occupies.
    #[must_use]
    pub fn sockets(&self) -> usize {
        self.tensor_parallel * self.pipeline_parallel
    }

    /// Whether this is the unsharded single-socket plan.
    #[must_use]
    pub fn is_single(&self) -> bool {
        self.sockets() == 1
    }

    /// Layers per pipeline stage: as even as possible, with the first
    /// `layers % pp` stages taking one extra (every stage is non-empty).
    ///
    /// # Panics
    ///
    /// Panics if the model has fewer layers than pipeline stages.
    #[must_use]
    pub fn stage_layers(&self, layers: usize) -> Vec<usize> {
        assert!(
            layers >= self.pipeline_parallel,
            "cannot split {layers} layers into {} pipeline stages",
            self.pipeline_parallel
        );
        let base = layers / self.pipeline_parallel;
        let extra = layers % self.pipeline_parallel;
        (0..self.pipeline_parallel)
            .map(|s| base + usize::from(s < extra))
            .collect()
    }

    /// One socket's share of a layer under tensor parallelism: the Q/KV
    /// heads and FFN columns are split `tensor_parallel` ways (rounded up,
    /// so the modeled socket is the worst-loaded one); the hidden dimension
    /// — every GeMM's *input* — stays full, exactly as in Megatron-style
    /// column/row-parallel sharding.
    #[must_use]
    pub fn shard_layer(&self, layer: &LayerGeometry) -> LayerGeometry {
        let t = self.tensor_parallel;
        LayerGeometry {
            hidden: layer.hidden,
            ffn_hidden: layer.ffn_hidden.div_ceil(t),
            heads: layer.heads.div_ceil(t),
            kv_heads: layer.kv_heads.div_ceil(t),
            head_dim: layer.head_dim,
            ffn: layer.ffn,
        }
    }

    /// One socket's share of the LM-head output (the vocabulary is
    /// column-sharded like every other FC GeMM).
    #[must_use]
    pub fn shard_vocab(&self, vocab: usize) -> usize {
        vocab.div_ceil(self.tensor_parallel)
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TP{}xPP{}", self.tensor_parallel, self.pipeline_parallel)
    }
}

/// The socket-to-socket interconnect: every link has a bandwidth and a
/// latency, and the two collective shapes the sharded estimator needs are
/// priced on top.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectModel {
    /// Usable bandwidth of one socket's links in GB/s.
    pub link_bandwidth_gbps: f64,
    /// One-way link latency in microseconds.
    pub link_latency_us: f64,
}

impl InterconnectModel {
    /// A free interconnect (infinite bandwidth, zero latency): sharding
    /// with this model isolates the pure compute/memory effect, and makes
    /// the `TP=1 × PP=1` plan reproduce the unsharded estimator exactly.
    #[must_use]
    pub fn zero_cost() -> Self {
        InterconnectModel {
            link_bandwidth_gbps: f64::INFINITY,
            link_latency_us: 0.0,
        }
    }

    /// A UPI-class socket interconnect: three 16 GT/s links ≈ 62.4 GB/s of
    /// usable aggregate bandwidth per socket, ~1.2 µs one-way latency.
    #[must_use]
    pub fn spr_upi() -> Self {
        InterconnectModel {
            link_bandwidth_gbps: 62.4,
            link_latency_us: 1.2,
        }
    }

    fn bytes_per_second(&self) -> f64 {
        self.link_bandwidth_gbps * 1e9
    }

    fn latency_seconds(&self) -> f64 {
        self.link_latency_us * 1e-6
    }

    /// Ring all-reduce of `bytes` across `participants` sockets: each
    /// socket sends `2·(p−1)/p · bytes` over `2·(p−1)` latency-bound steps.
    /// Zero for a single participant.
    #[must_use]
    pub fn all_reduce_seconds(&self, bytes: f64, participants: usize) -> f64 {
        if participants <= 1 {
            return 0.0;
        }
        let p = participants as f64;
        let steps = 2.0 * (p - 1.0);
        2.0 * (p - 1.0) / p * bytes / self.bytes_per_second() + steps * self.latency_seconds()
    }

    /// Point-to-point transfer of `bytes` over one link.
    #[must_use]
    pub fn point_to_point_seconds(&self, bytes: f64) -> f64 {
        bytes / self.bytes_per_second() + self.latency_seconds()
    }
}

/// Latency breakdown of one generated token under a sharding plan: the
/// per-socket compute/memory components plus the interconnect cost.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardedNextTokenReport {
    /// Model name.
    pub model: String,
    /// Scheme label.
    pub scheme: String,
    /// Engine label.
    pub engine: String,
    /// Functional decompression backend behind the modeled FC numbers.
    pub decompress_engine: String,
    /// The sharding plan.
    pub spec: ShardSpec,
    /// Batch size.
    pub batch: usize,
    /// Context length (tokens already in the KV cache).
    pub context_tokens: usize,
    /// Seconds in FC-layer GeMMs, summed over the pipeline stages (each
    /// stage runs its sharded shapes on its own sockets).
    pub fc_seconds: f64,
    /// Seconds of KV-cache traffic (per-socket: the KV heads are sharded).
    pub attention_seconds: f64,
    /// Seconds of per-layer overhead across all stages.
    pub other_seconds: f64,
    /// Seconds of tensor-parallel all-reduces (one per TP GeMM).
    pub allreduce_seconds: f64,
    /// Seconds of pipeline-boundary activation transfers.
    pub transfer_seconds: f64,
}

impl ShardedNextTokenReport {
    /// Total next-token latency in seconds (a decode token traverses every
    /// pipeline stage in sequence).
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.fc_seconds
            + self.attention_seconds
            + self.other_seconds
            + self.allreduce_seconds
            + self.transfer_seconds
    }

    /// Total next-token latency in milliseconds.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.total_seconds() * 1e3
    }

    /// Total interconnect seconds (all-reduce plus stage transfers).
    #[must_use]
    pub fn comm_seconds(&self) -> f64 {
        self.allreduce_seconds + self.transfer_seconds
    }

    /// Fraction of the token time spent on the interconnect.
    #[must_use]
    pub fn comm_fraction(&self) -> f64 {
        if self.total_seconds() == 0.0 {
            0.0
        } else {
            self.comm_seconds() / self.total_seconds()
        }
    }

    /// Tokens per second for the whole batch.
    #[must_use]
    pub fn tokens_per_second(&self) -> f64 {
        if self.total_seconds() == 0.0 {
            0.0
        } else {
            self.batch as f64 / self.total_seconds()
        }
    }
}

/// Latency breakdown of a prefill under a sharding plan (single-microbatch
/// pipeline: the prompt flows through the stages back to back).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardedPrefillReport {
    /// Model name.
    pub model: String,
    /// Scheme label.
    pub scheme: String,
    /// Engine label.
    pub engine: String,
    /// Functional decompression backend behind the modeled FC numbers.
    pub decompress_engine: String,
    /// The sharding plan.
    pub spec: ShardSpec,
    /// Prompt tokens processed by this prefill.
    pub prompt_tokens: usize,
    /// Tokens already resident in the KV cache before the prefill.
    pub context_tokens: usize,
    /// Seconds in FC-layer GeMMs across all stages.
    pub fc_seconds: f64,
    /// Seconds of causal-attention KV traffic (per-socket).
    pub attention_seconds: f64,
    /// Seconds of per-layer overhead across all stages.
    pub other_seconds: f64,
    /// Seconds of tensor-parallel all-reduces.
    pub allreduce_seconds: f64,
    /// Seconds of pipeline-boundary activation transfers.
    pub transfer_seconds: f64,
}

impl ShardedPrefillReport {
    /// Total prefill latency in seconds.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.fc_seconds
            + self.attention_seconds
            + self.other_seconds
            + self.allreduce_seconds
            + self.transfer_seconds
    }

    /// Total prefill latency in milliseconds.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.total_seconds() * 1e3
    }

    /// Total interconnect seconds.
    #[must_use]
    pub fn comm_seconds(&self) -> f64 {
        self.allreduce_seconds + self.transfer_seconds
    }

    /// Prompt tokens processed per second.
    #[must_use]
    pub fn tokens_per_second(&self) -> f64 {
        if self.total_seconds() == 0.0 {
            0.0
        } else {
            self.prompt_tokens as f64 / self.total_seconds()
        }
    }
}

/// Estimates sharded prefill/decode latencies and per-socket footprints for
/// any (scheme × engine × TP × PP) deployment point.
///
/// The per-tile pricing, KV-traffic and overhead arithmetic is *shared*
/// with [`InferenceEstimator`] (not re-derived), so the single-socket plan
/// under a [`InterconnectModel::zero_cost`] interconnect reproduces the
/// unsharded reports exactly.
#[derive(Debug, Clone)]
pub struct ShardedEstimator {
    inner: InferenceEstimator,
    spec: ShardSpec,
    interconnect: InterconnectModel,
}

impl ShardedEstimator {
    /// Creates a sharded estimator: every socket is one `machine`.
    #[must_use]
    pub fn new(machine: MachineConfig, spec: ShardSpec, interconnect: InterconnectModel) -> Self {
        ShardedEstimator {
            inner: InferenceEstimator::new(machine),
            spec,
            interconnect,
        }
    }

    /// Wraps an existing single-socket estimator.
    #[must_use]
    pub fn from_estimator(
        inner: InferenceEstimator,
        spec: ShardSpec,
        interconnect: InterconnectModel,
    ) -> Self {
        ShardedEstimator {
            inner,
            spec,
            interconnect,
        }
    }

    /// Selects the functional decompression backend behind the FC numbers.
    #[must_use]
    pub fn with_decompress_backend(mut self, backend: deca_compress::EngineKind) -> Self {
        self.inner = self.inner.with_decompress_backend(backend);
        self
    }

    /// The sharding plan.
    #[must_use]
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The interconnect model.
    #[must_use]
    pub fn interconnect(&self) -> InterconnectModel {
        self.interconnect
    }

    /// The wrapped single-socket estimator.
    #[must_use]
    pub fn inner(&self) -> &InferenceEstimator {
        &self.inner
    }

    /// Estimates the latency of generating one token under the plan.
    ///
    /// # Panics
    ///
    /// Panics if the model has fewer layers than pipeline stages.
    #[must_use]
    pub fn next_token(
        &self,
        model: &LlmModel,
        scheme: &CompressionScheme,
        engine: Engine,
        batch: usize,
        context_tokens: usize,
    ) -> ShardedNextTokenReport {
        let (seconds_per_tile, decompress_engine) =
            self.inner.decode_tile_seconds(scheme, engine, batch);
        let (fc_seconds, attention_seconds, other_seconds) = self.stage_components(
            model,
            batch,
            seconds_per_tile,
            |estimator, kv_bytes, layers| {
                estimator.kv_traffic_seconds(kv_bytes, layers, batch, context_tokens)
            },
        );
        ShardedNextTokenReport {
            model: model.name().to_string(),
            scheme: scheme.label(),
            engine: engine.label(),
            decompress_engine,
            spec: self.spec,
            batch,
            context_tokens,
            fc_seconds,
            attention_seconds,
            other_seconds,
            allreduce_seconds: self.allreduce_seconds(model, batch),
            transfer_seconds: self.transfer_seconds(model, batch),
        }
    }

    /// Estimates the latency of a prefill under the plan (single-microbatch
    /// pipeline: stages run back to back, so pipeline parallelism reduces
    /// the per-stage work but not the serial depth).
    ///
    /// # Panics
    ///
    /// Panics if `prompt_tokens` is zero or the model has fewer layers than
    /// pipeline stages.
    #[must_use]
    pub fn prefill(
        &self,
        model: &LlmModel,
        scheme: &CompressionScheme,
        engine: Engine,
        prompt_tokens: usize,
        context_tokens: usize,
    ) -> ShardedPrefillReport {
        assert!(prompt_tokens > 0, "a prefill processes at least one token");
        let (seconds_per_tile, decompress_engine) =
            self.inner
                .prefill_tile_seconds(scheme, engine, prompt_tokens);
        let (fc_seconds, attention_seconds, other_seconds) = self.stage_components(
            model,
            prompt_tokens,
            seconds_per_tile,
            |estimator, kv_bytes, layers| {
                estimator.prefill_kv_traffic_seconds(
                    kv_bytes,
                    layers,
                    prompt_tokens,
                    context_tokens,
                )
            },
        );
        ShardedPrefillReport {
            model: model.name().to_string(),
            scheme: scheme.label(),
            engine: engine.label(),
            decompress_engine,
            spec: self.spec,
            prompt_tokens,
            context_tokens,
            fc_seconds,
            attention_seconds,
            other_seconds,
            allreduce_seconds: self.allreduce_seconds(model, prompt_tokens),
            transfer_seconds: self.transfer_seconds(model, prompt_tokens),
        }
    }

    /// The per-socket compute/memory components summed over the pipeline
    /// stages. `rows` is the activation row count of every GeMM (the batch
    /// for decode, the prompt length for prefill); `kv_traffic` prices one
    /// stage's KV traffic from its per-token KV bytes and layer count.
    fn stage_components(
        &self,
        model: &LlmModel,
        rows: usize,
        seconds_per_tile: f64,
        kv_traffic: impl Fn(&InferenceEstimator, usize, usize) -> f64,
    ) -> (f64, f64, f64) {
        let sharded_layer = self.spec.shard_layer(model.layer());
        let stage_layers = self.spec.stage_layers(model.layers());
        let last = stage_layers.len() - 1;
        let lm_head = GemmShape::new(
            rows,
            model.layer().hidden,
            self.spec.shard_vocab(model.vocab()),
        );

        let mut fc_seconds = 0.0;
        let mut attention_seconds = 0.0;
        let mut other_seconds = 0.0;
        for (stage, &layers) in stage_layers.iter().enumerate() {
            let mut shapes = Vec::new();
            for _ in 0..layers {
                shapes.extend(sharded_layer.fc_gemms(rows));
            }
            if stage == last {
                shapes.push(lm_head);
            }
            fc_seconds += self.inner.fc_seconds_for(&shapes, seconds_per_tile);
            attention_seconds +=
                kv_traffic(&self.inner, sharded_layer.kv_bytes_per_token(), layers);
            other_seconds += InferenceEstimator::overhead_seconds(layers, rows);
        }
        (fc_seconds, attention_seconds, other_seconds)
    }

    /// Tensor-parallel all-reduce time per token step: one ring all-reduce
    /// of the full output activation (`rows × M` at BF16) per TP GeMM —
    /// every layer's GeMMs plus the LM head. A slight over-approximation of
    /// fused Megatron sharding (which folds column/row-parallel pairs into
    /// two all-reduces per layer), so the sharded model is conservative.
    fn allreduce_seconds(&self, model: &LlmModel, rows: usize) -> f64 {
        let tp = self.spec.tensor_parallel;
        if tp <= 1 {
            return 0.0;
        }
        let per_layer: f64 = model
            .layer()
            .fc_gemms(rows)
            .iter()
            .map(|shape| {
                self.interconnect
                    .all_reduce_seconds((shape.n * shape.m * 2) as f64, tp)
            })
            .sum();
        per_layer * model.layers() as f64
            + self
                .interconnect
                .all_reduce_seconds((rows * model.vocab() * 2) as f64, tp)
    }

    /// Pipeline-boundary activation transfers: `PP − 1` point-to-point
    /// sends of the `rows × hidden` BF16 activation.
    fn transfer_seconds(&self, model: &LlmModel, rows: usize) -> f64 {
        let pp = self.spec.pipeline_parallel;
        if pp <= 1 {
            return 0.0;
        }
        (pp - 1) as f64
            * self
                .interconnect
                .point_to_point_seconds((rows * model.layer().hidden * 2) as f64)
    }
}

/// Weight bytes resident on the *worst-loaded* socket under a plan: each
/// pipeline stage holds its layers' FC weights divided `TP` ways, the last
/// stage adds the sharded LM head, and stage 0 carries the (unsharded,
/// BF16) embedding table.
#[must_use]
pub fn sharded_weight_bytes_per_socket(
    model: &LlmModel,
    scheme: &CompressionScheme,
    spec: &ShardSpec,
) -> f64 {
    stage_weight_bytes(model, scheme, spec)
        .into_iter()
        .fold(0.0, f64::max)
}

/// HBM left for the KV cache on the *tightest* socket under a plan.
/// Negative when some socket's weight shard alone overflows the 64 GB.
#[must_use]
pub fn sharded_hbm_headroom_bytes(
    model: &LlmModel,
    scheme: &CompressionScheme,
    spec: &ShardSpec,
) -> f64 {
    stage_weight_bytes(model, scheme, spec)
        .into_iter()
        .map(|bytes| HBM_CAPACITY_BYTES as f64 - bytes)
        .fold(f64::INFINITY, f64::min)
}

/// The fleet-wide KV-token budget under a plan: a resident token stores
/// sharded KV on *every* stage's sockets, so the budget is the minimum over
/// stages of `stage headroom / stage per-token KV bytes`. `None` when some
/// socket's weight shard does not fit, or when a degenerate model has zero
/// per-token KV cost on a stage (mirroring
/// [`crate::footprint::max_kv_tokens`]).
#[must_use]
pub fn sharded_max_kv_tokens(
    model: &LlmModel,
    scheme: &CompressionScheme,
    spec: &ShardSpec,
) -> Option<u64> {
    let sharded_layer = spec.shard_layer(model.layer());
    let stage_layers = spec.stage_layers(model.layers());
    let mut budget = u64::MAX;
    for (bytes, &layers) in stage_weight_bytes(model, scheme, spec)
        .into_iter()
        .zip(&stage_layers)
    {
        let headroom = HBM_CAPACITY_BYTES as f64 - bytes;
        if headroom < 0.0 {
            return None;
        }
        let per_token = (layers * sharded_layer.kv_bytes_per_token()) as f64;
        if per_token <= 0.0 {
            return None;
        }
        budget = budget.min((headroom / per_token) as u64);
    }
    Some(budget)
}

/// The fleet-wide KV-cache *block* budget under a plan (the paged
/// allocator's pool size for a sharded replica): the sharded token budget
/// in whole blocks of `block_size` tokens, rounded down. `None` exactly
/// when [`sharded_max_kv_tokens`] is `None`.
///
/// # Panics
///
/// Panics if `block_size` is zero.
#[must_use]
pub fn sharded_max_kv_blocks(
    model: &LlmModel,
    scheme: &CompressionScheme,
    spec: &ShardSpec,
    block_size: usize,
) -> Option<u64> {
    assert!(block_size > 0, "block size must be positive");
    sharded_max_kv_tokens(model, scheme, spec).map(|tokens| tokens / block_size as u64)
}

/// Whether the weight shards *and* the sharded KV cache of `batch`
/// sequences at `context_tokens` fit on every socket of the plan.
#[must_use]
pub fn sharded_fits_in_hbm_with_kv(
    model: &LlmModel,
    scheme: &CompressionScheme,
    spec: &ShardSpec,
    context_tokens: usize,
    batch: usize,
) -> bool {
    let sharded_layer = spec.shard_layer(model.layer());
    let stage_layers = spec.stage_layers(model.layers());
    stage_weight_bytes(model, scheme, spec)
        .into_iter()
        .zip(&stage_layers)
        .all(|(bytes, &layers)| {
            let kv = (layers * sharded_layer.kv_bytes_per_token() * context_tokens * batch) as f64;
            kv <= HBM_CAPACITY_BYTES as f64 - bytes
        })
}

/// Per-stage worst-socket weight bytes (FC shard + LM-head shard on the
/// last stage + embeddings on stage 0).
fn stage_weight_bytes(model: &LlmModel, scheme: &CompressionScheme, spec: &ShardSpec) -> Vec<f64> {
    let sharded_layer = spec.shard_layer(model.layer());
    let stage_layers = spec.stage_layers(model.layers());
    let last = stage_layers.len() - 1;
    let embedding_bytes = (model.total_params() - model.fc_params()) as f64 * 2.0;
    stage_layers
        .iter()
        .enumerate()
        .map(|(stage, &layers)| {
            let mut params = layers * sharded_layer.fc_params();
            if stage == last {
                params += model.layer().hidden * spec.shard_vocab(model.vocab());
            }
            let mut bytes = params as f64 * bytes_per_parameter(scheme);
            if stage == 0 {
                bytes += embedding_bytes;
            }
            bytes
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint;

    fn hbm_sharded(spec: ShardSpec) -> ShardedEstimator {
        ShardedEstimator::new(MachineConfig::spr_hbm(), spec, InterconnectModel::spr_upi())
    }

    #[test]
    fn single_socket_zero_cost_plan_is_bit_identical_to_the_unsharded_estimator() {
        let machine = MachineConfig::spr_hbm();
        let unsharded = InferenceEstimator::new(machine.clone());
        let sharded =
            ShardedEstimator::new(machine, ShardSpec::single(), InterconnectModel::zero_cost());
        let model = LlmModel::llama2_70b();
        for scheme in [
            CompressionScheme::bf16_dense(),
            CompressionScheme::bf8_sparse(0.05),
        ] {
            let base = unsharded.next_token(&model, &scheme, Engine::deca_default(), 4, 512);
            let shard = sharded.next_token(&model, &scheme, Engine::deca_default(), 4, 512);
            assert_eq!(shard.fc_seconds.to_bits(), base.fc_seconds.to_bits());
            assert_eq!(
                shard.attention_seconds.to_bits(),
                base.attention_seconds.to_bits()
            );
            assert_eq!(shard.other_seconds.to_bits(), base.other_seconds.to_bits());
            assert_eq!(
                shard.total_seconds().to_bits(),
                base.total_seconds().to_bits()
            );
            assert_eq!(shard.comm_seconds(), 0.0);

            let base_p = unsharded.prefill(&model, &scheme, Engine::deca_default(), 384, 0);
            let shard_p = sharded.prefill(&model, &scheme, Engine::deca_default(), 384, 0);
            assert_eq!(
                shard_p.total_seconds().to_bits(),
                base_p.total_seconds().to_bits()
            );
        }
    }

    #[test]
    fn sharded_block_budget_is_the_sharded_token_budget_in_whole_blocks() {
        let model = LlmModel::llama2_70b();
        let q8 = CompressionScheme::bf8_dense();
        // Dense Q8 does not fit one socket: no tokens, no blocks.
        assert_eq!(
            sharded_max_kv_blocks(&model, &q8, &ShardSpec::single(), 16),
            None
        );
        let tp2 = ShardSpec::tp(2);
        let tokens = sharded_max_kv_tokens(&model, &q8, &tp2).expect("TP2 fits");
        assert_eq!(
            sharded_max_kv_blocks(&model, &q8, &tp2, 16),
            Some(tokens / 16)
        );
        // Single socket + block size 1 reduces to the unsharded token budget.
        let q8_5 = CompressionScheme::bf8_sparse(0.05);
        assert_eq!(
            sharded_max_kv_blocks(&model, &q8_5, &ShardSpec::single(), 1),
            footprint::max_kv_tokens(&model, &q8_5)
        );
    }

    #[test]
    fn tensor_parallelism_cuts_per_socket_time_and_memory() {
        let model = LlmModel::llama2_70b();
        let scheme = CompressionScheme::bf8_sparse(0.05);
        let tp1 = hbm_sharded(ShardSpec::single());
        let tp4 = hbm_sharded(ShardSpec::tp(4));
        let base = tp1.next_token(&model, &scheme, Engine::deca_default(), 1, 2048);
        let shard = tp4.next_token(&model, &scheme, Engine::deca_default(), 1, 2048);
        // The weight stream shrinks close to 4x (the per-GeMM launch
        // barrier is a fixed serial cost, so the FC ratio floors above
        // 1/4); KV traffic shards with the KV heads; comm is added on top.
        assert!(shard.fc_seconds < 0.55 * base.fc_seconds);
        assert!(shard.attention_seconds < 0.3 * base.attention_seconds);
        assert!(shard.comm_seconds() > 0.0);
        assert!(shard.total_seconds() < base.total_seconds());

        let w1 = sharded_weight_bytes_per_socket(&model, &scheme, &ShardSpec::single());
        let w4 = sharded_weight_bytes_per_socket(&model, &scheme, &ShardSpec::tp(4));
        assert!(w4 < 0.3 * w1, "TP4 per-socket weights {w4:.2e} vs {w1:.2e}");
    }

    #[test]
    fn pipeline_stages_partition_the_layers() {
        let spec = ShardSpec::pp(3);
        let stages = spec.stage_layers(80);
        assert_eq!(stages.iter().sum::<usize>(), 80);
        assert_eq!(stages, vec![27, 27, 26]);
        assert_eq!(ShardSpec::pp(1).stage_layers(80), vec![80]);
    }

    #[test]
    fn q8_dense_fits_at_tp2_but_not_on_one_socket() {
        // §8: dense Q8 Llama2-70B does not fit in 64 GB of HBM. Two-way
        // tensor parallelism halves the shard and restores a KV budget.
        let model = LlmModel::llama2_70b();
        let q8 = CompressionScheme::bf8_dense();
        assert_eq!(footprint::max_kv_tokens(&model, &q8), None);
        assert_eq!(
            sharded_max_kv_tokens(&model, &q8, &ShardSpec::single()),
            None
        );
        let budget =
            sharded_max_kv_tokens(&model, &q8, &ShardSpec::tp(2)).expect("Q8 dense fits at TP2");
        assert!(budget > 50_000, "budget {budget}");
        assert!(sharded_fits_in_hbm_with_kv(
            &model,
            &q8,
            &ShardSpec::tp(2),
            4096,
            4
        ));
    }

    #[test]
    fn sharded_footprint_reduces_to_the_unsharded_one_on_a_single_socket() {
        let model = LlmModel::llama2_70b();
        for scheme in [
            CompressionScheme::bf8_sparse(0.05),
            CompressionScheme::mxfp4(),
        ] {
            let spec = ShardSpec::single();
            let sharded = sharded_weight_bytes_per_socket(&model, &scheme, &spec);
            let unsharded = footprint::model_footprint_bytes(&model, &scheme);
            assert_eq!(sharded.to_bits(), unsharded.to_bits());
            assert_eq!(
                sharded_max_kv_tokens(&model, &scheme, &spec),
                footprint::max_kv_tokens(&model, &scheme)
            );
        }
    }

    #[test]
    fn interconnect_collectives_price_latency_and_bandwidth() {
        let link = InterconnectModel::spr_upi();
        assert_eq!(link.all_reduce_seconds(1e9, 1), 0.0);
        let two = link.all_reduce_seconds(1e9, 2);
        let four = link.all_reduce_seconds(1e9, 4);
        // More participants move more total bytes per socket and pay more
        // latency steps.
        assert!(four > two && two > 0.0);
        let p2p = link.point_to_point_seconds(62.4e9);
        assert!((p2p - (1.0 + 1.2e-6)).abs() < 1e-9, "p2p {p2p}");
        // Zero-cost interconnect prices everything at exactly zero.
        let free = InterconnectModel::zero_cost();
        assert_eq!(free.all_reduce_seconds(1e12, 8), 0.0);
        assert_eq!(free.point_to_point_seconds(1e12), 0.0);
    }

    #[test]
    fn deep_pipelines_add_transfer_time_but_split_memory() {
        let model = LlmModel::llama2_70b();
        let scheme = CompressionScheme::mxfp4();
        let pp1 = hbm_sharded(ShardSpec::single());
        let pp4 = hbm_sharded(ShardSpec::pp(4));
        let base = pp1.next_token(&model, &scheme, Engine::deca_default(), 1, 128);
        let deep = pp4.next_token(&model, &scheme, Engine::deca_default(), 1, 128);
        // A decode token still traverses every layer, so PP does not cut
        // the serial FC time — it adds boundary transfers...
        assert!(deep.transfer_seconds > 0.0);
        assert!(deep.fc_seconds >= 0.99 * base.fc_seconds);
        // ...but it does split the per-socket weights.
        let w1 = sharded_weight_bytes_per_socket(&model, &scheme, &ShardSpec::single());
        let w4 = sharded_weight_bytes_per_socket(&model, &scheme, &ShardSpec::pp(4));
        assert!(w4 < 0.4 * w1);
    }

    #[test]
    fn gqa_kv_heads_stop_sharding_below_one_head() {
        // Llama2-70B has 8 KV heads: TP16 cannot split below one head per
        // socket, so the KV shard saturates at 1/8 of the full cache.
        let spec = ShardSpec::tp(16);
        let layer = *LlmModel::llama2_70b().layer();
        let sharded = spec.shard_layer(&layer);
        assert_eq!(sharded.kv_heads, 1);
        assert_eq!(sharded.heads, 4);
        assert_eq!(sharded.ffn_hidden, 1792);
    }

    #[test]
    fn spec_display_and_socket_accounting() {
        let spec = ShardSpec::new(4, 2);
        assert_eq!(spec.to_string(), "TP4xPP2");
        assert_eq!(spec.sockets(), 8);
        assert!(!spec.is_single());
        assert!(ShardSpec::single().is_single());
    }
}
