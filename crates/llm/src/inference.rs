//! Next-token (generation-phase) latency estimation.
//!
//! One generated token runs, per transformer layer, a set of FC-layer GeMMs
//! (timed through the compressed-GeMM executor on the simulated machine)
//! plus attention over the KV cache and a collection of small stages
//! (normalization, rotary embeddings, softmax, residuals and framework
//! overhead). The FC GeMMs dominate (Table 1); the non-GeMM stages are
//! modelled as KV-cache bandwidth time plus a per-layer overhead calibrated
//! once against Table 1's FC-time fractions and then left untouched for
//! every other experiment.

use deca_compress::{CompressionScheme, EngineKind};
use deca_kernels::{CompressedGemmExecutor, Engine, GemmShape, Parlooper};
use deca_roofsurface::MachineConfig;

use crate::LlmModel;

/// Fixed per-layer, per-token overhead (µs) for normalization, softmax,
/// residuals, KV-cache bookkeeping and framework dispatch. Calibrated so the
/// uncompressed Llama2-70B FC-time fraction matches Table 1 on both DDR and
/// HBM.
const LAYER_OVERHEAD_US: f64 = 190.0;
/// Additional per-layer overhead per sequence in the batch (µs): the
/// per-token elementwise work scales with the batch size.
const LAYER_OVERHEAD_PER_SEQUENCE_US: f64 = 7.0;
/// Launch/barrier overhead per FC GeMM (µs): Parlooper synchronizes the 56
/// cores at the end of every GeMM, and each GeMM pays a short ramp-up before
/// the tile pipeline reaches steady state.
const GEMM_LAUNCH_BARRIER_US: f64 = 15.0;

/// Latency breakdown of generating one token.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NextTokenReport {
    /// Model name.
    pub model: String,
    /// Scheme label.
    pub scheme: String,
    /// Engine label.
    pub engine: String,
    /// Which functional decompression backend stands behind the modeled FC
    /// numbers (the engine axis of the compression substrate).
    pub decompress_engine: String,
    /// Batch size.
    pub batch: usize,
    /// Context length (tokens already in the KV cache).
    pub context_tokens: usize,
    /// Seconds spent in FC-layer GeMMs.
    pub fc_seconds: f64,
    /// Seconds spent reading/writing the KV cache during attention.
    pub attention_seconds: f64,
    /// Seconds of per-layer overhead (norms, softmax, residuals, framework).
    pub other_seconds: f64,
}

impl NextTokenReport {
    /// Total next-token latency in seconds.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.fc_seconds + self.attention_seconds + self.other_seconds
    }

    /// Total next-token latency in milliseconds (the unit of Table 4).
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.total_seconds() * 1e3
    }

    /// Fraction of the next-token time spent in FC-layer GeMMs (Table 1).
    #[must_use]
    pub fn fc_fraction(&self) -> f64 {
        if self.total_seconds() == 0.0 {
            0.0
        } else {
            self.fc_seconds / self.total_seconds()
        }
    }

    /// Tokens per second for the whole batch.
    #[must_use]
    pub fn tokens_per_second(&self) -> f64 {
        if self.total_seconds() == 0.0 {
            0.0
        } else {
            self.batch as f64 / self.total_seconds()
        }
    }
}

/// Latency breakdown of the prefill (prompt-processing) phase of one
/// sequence: the whole prompt runs through every layer at once, so the FC
/// GeMMs have `prompt_tokens` activation rows and the TMUL — not the weight
/// stream — can become the bound.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PrefillReport {
    /// Model name.
    pub model: String,
    /// Scheme label.
    pub scheme: String,
    /// Engine label.
    pub engine: String,
    /// Functional decompression backend behind the modeled FC numbers.
    pub decompress_engine: String,
    /// Prompt tokens processed by this prefill.
    pub prompt_tokens: usize,
    /// Tokens already resident in the KV cache before the prefill (0 for a
    /// fresh request).
    pub context_tokens: usize,
    /// Seconds spent in FC-layer GeMMs.
    pub fc_seconds: f64,
    /// Seconds spent reading/writing the KV cache during causal attention.
    pub attention_seconds: f64,
    /// Seconds of per-layer overhead (norms, softmax, residuals, framework).
    pub other_seconds: f64,
}

impl PrefillReport {
    /// Total prefill latency in seconds — the time-to-first-token
    /// contribution of prompt processing.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.fc_seconds + self.attention_seconds + self.other_seconds
    }

    /// Total prefill latency in milliseconds.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.total_seconds() * 1e3
    }

    /// Prompt tokens processed per second.
    #[must_use]
    pub fn tokens_per_second(&self) -> f64 {
        if self.total_seconds() == 0.0 {
            0.0
        } else {
            self.prompt_tokens as f64 / self.total_seconds()
        }
    }
}

/// The draft side of speculative decoding: a second, smaller model that
/// proposes `draft_tokens` tokens per burst, each priced as one of *its*
/// decode steps, before the target model verifies the whole burst in a
/// single step. The spec is pure pricing data — acceptance behaviour
/// (which drafts survive verification) is scheduler policy and lives with
/// the serving layer.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DraftSpec {
    model: LlmModel,
    draft_tokens: usize,
}

impl DraftSpec {
    /// A draft model proposing `draft_tokens` tokens per burst.
    ///
    /// # Panics
    ///
    /// Panics if `draft_tokens` is zero (a zero-draft burst is just a
    /// decode step).
    #[must_use]
    pub fn new(model: LlmModel, draft_tokens: usize) -> Self {
        assert!(
            draft_tokens > 0,
            "a draft burst proposes at least one token"
        );
        DraftSpec {
            model,
            draft_tokens,
        }
    }

    /// The stock pairing: [`LlmModel::llama2_7b`] drafting for a Llama2
    /// target.
    #[must_use]
    pub fn llama2_7b(draft_tokens: usize) -> Self {
        DraftSpec::new(LlmModel::llama2_7b(), draft_tokens)
    }

    /// The draft model.
    #[must_use]
    pub fn model(&self) -> &LlmModel {
        &self.model
    }

    /// Draft tokens proposed per burst.
    #[must_use]
    pub fn draft_tokens(&self) -> usize {
        self.draft_tokens
    }
}

/// Estimates next-token latency for a model/scheme/engine combination on a
/// simulated machine.
#[derive(Debug, Clone)]
pub struct InferenceEstimator {
    machine: MachineConfig,
    executor: CompressedGemmExecutor,
}

impl InferenceEstimator {
    /// Creates an estimator for a machine.
    #[must_use]
    pub fn new(machine: MachineConfig) -> Self {
        InferenceEstimator {
            executor: CompressedGemmExecutor::new(machine.clone()),
            machine,
        }
    }

    /// Selects the functional decompression backend behind the FC-GeMM
    /// numbers; every [`NextTokenReport`] names it.
    #[must_use]
    pub fn with_decompress_backend(mut self, backend: EngineKind) -> Self {
        self.executor = self.executor.with_decompress_backend(backend);
        self
    }

    /// The underlying compressed-GeMM executor.
    #[must_use]
    pub fn executor(&self) -> &CompressedGemmExecutor {
        &self.executor
    }

    /// Estimates the latency of generating one token.
    #[must_use]
    pub fn next_token(
        &self,
        model: &LlmModel,
        scheme: &CompressionScheme,
        engine: Engine,
        batch: usize,
        context_tokens: usize,
    ) -> NextTokenReport {
        // One steady-state simulation gives the per-tile rate for this
        // (scheme, engine, batch); every FC GeMM then contributes its own
        // worst-loaded-core tile count at that rate.
        let (seconds_per_tile, decompress_engine) = self.decode_tile_seconds(scheme, engine, batch);
        let fc_seconds = self.fc_seconds_for(&model.fc_gemms_per_token(batch), seconds_per_tile);
        let attention_seconds = self.attention_seconds(model, batch, context_tokens);
        let other_seconds = Self::overhead_seconds(model.layers(), batch);

        NextTokenReport {
            model: model.name().to_string(),
            scheme: scheme.label(),
            engine: engine.label(),
            decompress_engine,
            batch,
            context_tokens,
            fc_seconds,
            attention_seconds,
            other_seconds,
        }
    }

    /// Estimates the latency of the prefill phase: processing a
    /// `prompt_tokens`-long prompt of one sequence whose KV cache already
    /// holds `context_tokens` tokens.
    ///
    /// The weight stream is identical to a decode step (every FC weight is
    /// read once), but each decompressed tile now feeds
    /// `ceil(prompt_tokens / 16)` TMUL operations, so per tile the pipeline
    /// pays the *slower* of the steady-state (memory/decompress) tile rate
    /// and the TMUL occupancy — long prompts are compute-bound, exactly why
    /// prefill and decode need separate models.
    ///
    /// # Panics
    ///
    /// Panics if `prompt_tokens` is zero.
    #[must_use]
    pub fn prefill(
        &self,
        model: &LlmModel,
        scheme: &CompressionScheme,
        engine: Engine,
        prompt_tokens: usize,
        context_tokens: usize,
    ) -> PrefillReport {
        assert!(prompt_tokens > 0, "a prefill processes at least one token");
        let (seconds_per_tile, decompress_engine) =
            self.prefill_tile_seconds(scheme, engine, prompt_tokens);
        let fc_seconds =
            self.fc_seconds_for(&model.fc_gemms_per_token(prompt_tokens), seconds_per_tile);
        let attention_seconds =
            self.prefill_attention_seconds(model, prompt_tokens, context_tokens);
        // The elementwise per-token work (norms, rotary, residuals) scales
        // with the prompt length; the fixed per-layer dispatch is paid once.
        let other_seconds = Self::overhead_seconds(model.layers(), prompt_tokens);

        PrefillReport {
            model: model.name().to_string(),
            scheme: scheme.label(),
            engine: engine.label(),
            decompress_engine,
            prompt_tokens,
            context_tokens,
            fc_seconds,
            attention_seconds,
            other_seconds,
        }
    }

    /// Seconds of one speculative-decoding burst for a batch: the draft
    /// model runs `draft.draft_tokens()` of its own decode steps (weights
    /// streamed per drafted token), then the target model verifies the
    /// whole burst in one forward pass, priced as one of *its* decode
    /// steps — the standard approximation that scoring k drafted tokens
    /// costs one target pass, since the weight stream (not the k extra
    /// activation rows) is the bound.
    #[must_use]
    pub fn speculative_burst(
        &self,
        target: &LlmModel,
        draft: &DraftSpec,
        scheme: &CompressionScheme,
        engine: Engine,
        batch: usize,
        context_tokens: usize,
    ) -> f64 {
        let draft_step = self
            .next_token(draft.model(), scheme, engine, batch, context_tokens)
            .total_seconds();
        let verify = self
            .next_token(target, scheme, engine, batch, context_tokens)
            .total_seconds();
        draft.draft_tokens() as f64 * draft_step + verify
    }

    fn gemm_seconds(&self, shape: &GemmShape, seconds_per_tile: f64) -> f64 {
        let partition = Parlooper::partition(shape, self.machine.cores);
        partition.max_tiles_per_core() as f64 * seconds_per_tile
    }

    /// Steady-state decode tile rate for a (scheme, engine, batch) point,
    /// plus the functional decompression backend's label. Shared with the
    /// sharded estimator (`crate::parallel`) so both views price a tile
    /// identically.
    pub(crate) fn decode_tile_seconds(
        &self,
        scheme: &CompressionScheme,
        engine: Engine,
        batch: usize,
    ) -> (f64, String) {
        let run = self.executor.run(scheme, engine, batch);
        let seconds_per_tile = run.stats.cycles_per_tile() / self.machine.frequency_hz();
        (seconds_per_tile, run.decompress_engine)
    }

    /// Per-tile prefill rate: the slower of the steady-state stream rate and
    /// the TMUL occupancy — ceil(P/16) tile ops of `tmul_cycles_per_op`
    /// cycles each (the TMUL saturates at 16 activation rows per op).
    pub(crate) fn prefill_tile_seconds(
        &self,
        scheme: &CompressionScheme,
        engine: Engine,
        prompt_tokens: usize,
    ) -> (f64, String) {
        let run = self.executor.run(scheme, engine, prompt_tokens);
        let stream_seconds_per_tile = run.stats.cycles_per_tile() / self.machine.frequency_hz();
        let tmul_seconds_per_tile = prompt_tokens.div_ceil(16) as f64
            * f64::from(self.machine.tmul_cycles_per_op)
            / self.machine.frequency_hz();
        (
            stream_seconds_per_tile.max(tmul_seconds_per_tile),
            run.decompress_engine,
        )
    }

    /// Total FC time of a list of GeMMs at a fixed per-tile rate: each GeMM
    /// pays its worst-loaded-core tile count plus the launch/barrier cost.
    pub(crate) fn fc_seconds_for(&self, shapes: &[GemmShape], seconds_per_tile: f64) -> f64 {
        shapes
            .iter()
            .map(|shape| self.gemm_seconds(shape, seconds_per_tile))
            .sum::<f64>()
            + shapes.len() as f64 * GEMM_LAUNCH_BARRIER_US * 1e-6
    }

    /// Decode-step KV traffic time for `layers` layers whose per-token KV
    /// cost is `kv_bytes_per_token`: every layer reads the keys and values
    /// of the whole context for every sequence in the batch, and appends
    /// the new token's keys/values.
    pub(crate) fn kv_traffic_seconds(
        &self,
        kv_bytes_per_token: usize,
        layers: usize,
        batch: usize,
        context_tokens: usize,
    ) -> f64 {
        let per_layer_read = kv_bytes_per_token as f64 * context_tokens as f64 * batch as f64;
        let per_layer_write = kv_bytes_per_token as f64 * batch as f64;
        let total_bytes = (per_layer_read + per_layer_write) * layers as f64;
        total_bytes / self.machine.memory_bandwidth_bytes_per_sec()
    }

    /// Causal-attention KV traffic of a prefill: token `i` of the prompt
    /// reads the `context + i` keys/values before it, and every prompt
    /// token appends its own.
    pub(crate) fn prefill_kv_traffic_seconds(
        &self,
        kv_bytes_per_token: usize,
        layers: usize,
        prompt_tokens: usize,
        context_tokens: usize,
    ) -> f64 {
        let p = prompt_tokens as f64;
        let positions_read = p * context_tokens as f64 + p * (p - 1.0) / 2.0;
        let kv_bytes = kv_bytes_per_token as f64;
        let total_bytes = (positions_read + p) * kv_bytes * layers as f64;
        total_bytes / self.machine.memory_bandwidth_bytes_per_sec()
    }

    /// Per-layer overhead (norms, softmax, residuals, framework dispatch)
    /// for `layers` layers processing `sequences` token rows.
    pub(crate) fn overhead_seconds(layers: usize, sequences: usize) -> f64 {
        layers as f64
            * (LAYER_OVERHEAD_US + LAYER_OVERHEAD_PER_SEQUENCE_US * sequences as f64)
            * 1e-6
    }

    fn prefill_attention_seconds(
        &self,
        model: &LlmModel,
        prompt_tokens: usize,
        context_tokens: usize,
    ) -> f64 {
        self.prefill_kv_traffic_seconds(
            model.layer().kv_bytes_per_token(),
            model.layers(),
            prompt_tokens,
            context_tokens,
        )
    }

    fn attention_seconds(&self, model: &LlmModel, batch: usize, context_tokens: usize) -> f64 {
        self.kv_traffic_seconds(
            model.layer().kv_bytes_per_token(),
            model.layers(),
            batch,
            context_tokens,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_compress::CompressionScheme;

    fn hbm() -> InferenceEstimator {
        InferenceEstimator::new(MachineConfig::spr_hbm())
    }

    #[test]
    fn uncompressed_llama_latency_is_in_the_table4_ballpark() {
        // Table 4: 192.3 ms for BF16 Llama2-70B at batch 1 on HBM.
        let report = hbm().next_token(
            &LlmModel::llama2_70b(),
            &CompressionScheme::bf16_dense(),
            Engine::software(),
            1,
            128,
        );
        let ms = report.total_ms();
        assert!(
            (160.0..230.0).contains(&ms),
            "BF16 batch-1 next-token latency {ms:.1} ms"
        );
        assert!(report.fc_fraction() > 0.85);
    }

    #[test]
    fn deca_latency_decreases_monotonically_with_compression() {
        let estimator = hbm();
        let model = LlmModel::llama2_70b();
        let mut last = f64::INFINITY;
        for scheme in [
            CompressionScheme::mxfp4(),
            CompressionScheme::bf8_sparse(0.2),
            CompressionScheme::bf8_sparse(0.05),
        ] {
            let ms = estimator
                .next_token(&model, &scheme, Engine::deca_default(), 1, 128)
                .total_ms();
            assert!(ms < last, "{scheme}: {ms:.1} ms not below {last:.1} ms");
            last = ms;
        }
    }

    #[test]
    fn larger_batches_take_longer_but_give_more_tokens_per_second() {
        let estimator = hbm();
        let model = LlmModel::opt_66b();
        let scheme = CompressionScheme::mxfp4();
        let b1 = estimator.next_token(&model, &scheme, Engine::deca_default(), 1, 128);
        let b16 = estimator.next_token(&model, &scheme, Engine::deca_default(), 16, 128);
        assert!(b16.total_ms() > b1.total_ms());
        assert!(b16.tokens_per_second() > b1.tokens_per_second());
    }

    #[test]
    fn attention_time_grows_with_context_length() {
        let estimator = hbm();
        let model = LlmModel::opt_66b();
        let scheme = CompressionScheme::bf8_sparse(0.2);
        let short = estimator.next_token(&model, &scheme, Engine::deca_default(), 16, 128);
        let long = estimator.next_token(&model, &scheme, Engine::deca_default(), 16, 4096);
        assert!(long.attention_seconds > 10.0 * short.attention_seconds);
        assert!(long.total_ms() > short.total_ms());
        // FC time itself is unchanged by the context length.
        assert!((long.fc_seconds - short.fc_seconds).abs() < 1e-9);
    }

    #[test]
    fn report_accessors_are_consistent() {
        let report = hbm().next_token(
            &LlmModel::llama2_70b(),
            &CompressionScheme::mxfp4(),
            Engine::deca_default(),
            4,
            128,
        );
        let total = report.fc_seconds + report.attention_seconds + report.other_seconds;
        assert!((report.total_seconds() - total).abs() < 1e-15);
        assert!((report.total_ms() - total * 1e3).abs() < 1e-9);
        assert!(report.fc_fraction() > 0.0 && report.fc_fraction() < 1.0);
        assert!((report.tokens_per_second() - 4.0 / total).abs() < 1e-6);
        assert_eq!(report.batch, 4);
        assert_eq!(report.scheme, "Q4");
        assert_eq!(report.decompress_engine, "scalar");
    }

    #[test]
    fn prefill_is_much_faster_than_token_by_token_decode() {
        // The whole point of a prefill phase: 512 prompt tokens through the
        // weight stream once beats 512 decode steps by a wide margin.
        let estimator = hbm();
        let model = LlmModel::llama2_70b();
        let scheme = CompressionScheme::bf8_sparse(0.05);
        let prefill = estimator.prefill(&model, &scheme, Engine::deca_default(), 512, 0);
        let decode = estimator.next_token(&model, &scheme, Engine::deca_default(), 1, 256);
        assert!(
            prefill.total_seconds() < 0.25 * 512.0 * decode.total_seconds(),
            "prefill {:.1} ms vs 512 decode steps {:.1} ms",
            prefill.total_ms(),
            512.0 * decode.total_ms()
        );
        // But a prefill is still far more work than a single decode step.
        assert!(prefill.total_seconds() > 2.0 * decode.total_seconds());
    }

    #[test]
    fn long_prompts_become_tmul_bound() {
        // At short prompts the weight stream dominates (memory-bound), so
        // doubling the prompt barely moves the FC time; at long prompts the
        // TMUL occupancy dominates and the FC time scales linearly. The
        // uncompressed BF16 stream is heavy enough to stay memory-bound up
        // to a few hundred prompt tokens (highly compressed schemes flip to
        // TMUL-bound almost immediately).
        let estimator = hbm();
        let model = LlmModel::llama2_70b();
        let scheme = CompressionScheme::bf16_dense();
        let fc = |tokens| {
            estimator
                .prefill(&model, &scheme, Engine::software(), tokens, 0)
                .fc_seconds
        };
        let short_ratio = fc(32) / fc(16);
        let long_ratio = fc(2048) / fc(1024);
        assert!(short_ratio < 1.6, "short-prompt FC ratio {short_ratio:.2}");
        assert!(long_ratio > 1.9, "long-prompt FC ratio {long_ratio:.2}");
    }

    #[test]
    fn prefill_attention_grows_quadratically_and_with_prior_context() {
        let estimator = hbm();
        let model = LlmModel::opt_66b();
        let scheme = CompressionScheme::mxfp4();
        let short = estimator.prefill(&model, &scheme, Engine::deca_default(), 256, 0);
        let long = estimator.prefill(&model, &scheme, Engine::deca_default(), 1024, 0);
        // 4x the prompt, ~16x the causal KV reads.
        let ratio = long.attention_seconds / short.attention_seconds;
        assert!((14.0..18.0).contains(&ratio), "attention ratio {ratio:.1}");
        let with_context = estimator.prefill(&model, &scheme, Engine::deca_default(), 256, 4096);
        assert!(with_context.attention_seconds > 5.0 * short.attention_seconds);
        assert_eq!(with_context.context_tokens, 4096);
    }

    #[test]
    fn prefill_report_accessors_are_consistent() {
        let report = hbm().prefill(
            &LlmModel::llama2_70b(),
            &CompressionScheme::mxfp4(),
            Engine::deca_default(),
            128,
            0,
        );
        let total = report.fc_seconds + report.attention_seconds + report.other_seconds;
        assert!((report.total_seconds() - total).abs() < 1e-15);
        assert!((report.total_ms() - total * 1e3).abs() < 1e-9);
        assert!((report.tokens_per_second() - 128.0 / total).abs() < 1e-6);
        assert_eq!(report.prompt_tokens, 128);
        assert_eq!(report.scheme, "Q4");
        assert_eq!(report.decompress_engine, "scalar");
    }

    #[test]
    fn deca_prefill_beats_software_prefill() {
        // DECA speeds up the memory/decompress side; on short prompts that
        // side is the bound, so the prefill advantage survives.
        let estimator = hbm();
        let model = LlmModel::llama2_70b();
        let scheme = CompressionScheme::bf8_sparse(0.05);
        let sw = estimator.prefill(&model, &scheme, Engine::software(), 64, 0);
        let deca = estimator.prefill(&model, &scheme, Engine::deca_default(), 64, 0);
        assert!(
            deca.total_seconds() < sw.total_seconds(),
            "DECA {:.1} ms vs software {:.1} ms",
            deca.total_ms(),
            sw.total_ms()
        );
    }

    #[test]
    fn decompress_backend_choice_is_named_but_does_not_move_latency() {
        let model = LlmModel::llama2_70b();
        let scheme = CompressionScheme::bf8_sparse(0.2);
        let scalar = hbm().next_token(&model, &scheme, Engine::deca_default(), 1, 128);
        let word = hbm()
            .with_decompress_backend(EngineKind::WordParallel)
            .next_token(&model, &scheme, Engine::deca_default(), 1, 128);
        assert_eq!(scalar.decompress_engine, "scalar");
        assert_eq!(word.decompress_engine, "word-parallel");
        // All backends are bit-exact, so the modeled latency is identical.
        assert!((scalar.total_ms() - word.total_ms()).abs() < 1e-12);
    }

    #[test]
    fn draft_spec_accessors_and_stock_pairing() {
        let draft = DraftSpec::llama2_7b(4);
        assert_eq!(draft.model().name(), "Llama2-7B");
        assert_eq!(draft.draft_tokens(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_draft_tokens_panic() {
        let _ = DraftSpec::llama2_7b(0);
    }

    #[test]
    fn speculative_burst_prices_draft_steps_plus_one_verify() {
        let estimator = hbm();
        let target = LlmModel::llama2_70b();
        let scheme = CompressionScheme::bf8_sparse(0.05);
        let engine = Engine::deca_default();
        let draft = DraftSpec::llama2_7b(4);
        let burst = estimator.speculative_burst(&target, &draft, &scheme, engine, 4, 512);
        let draft_step = estimator
            .next_token(draft.model(), &scheme, engine, 4, 512)
            .total_seconds();
        let verify = estimator
            .next_token(&target, &scheme, engine, 4, 512)
            .total_seconds();
        assert_eq!(
            burst.to_bits(),
            (4.0 * draft_step + verify).to_bits(),
            "a burst is exactly k draft steps plus one verify step"
        );
        // The whole point: a 4-token burst on a 7B draft costs well under
        // four target decode steps.
        assert!(burst < 4.0 * verify);
    }
}
