//! Next-token (generation-phase) latency estimation.
//!
//! One generated token runs, per transformer layer, a set of FC-layer GeMMs
//! (timed through the compressed-GeMM executor on the simulated machine)
//! plus attention over the KV cache and a collection of small stages
//! (normalization, rotary embeddings, softmax, residuals and framework
//! overhead). The FC GeMMs dominate (Table 1); the non-GeMM stages are
//! modelled as KV-cache bandwidth time plus a per-layer overhead calibrated
//! once against Table 1's FC-time fractions and then left untouched for
//! every other experiment.

use deca_compress::{CompressionScheme, EngineKind};
use deca_kernels::{CompressedGemmExecutor, Engine, GemmShape, Parlooper};
use deca_roofsurface::MachineConfig;

use crate::LlmModel;

/// Fixed per-layer, per-token overhead (µs) for normalization, softmax,
/// residuals, KV-cache bookkeeping and framework dispatch. Calibrated so the
/// uncompressed Llama2-70B FC-time fraction matches Table 1 on both DDR and
/// HBM.
const LAYER_OVERHEAD_US: f64 = 190.0;
/// Additional per-layer overhead per sequence in the batch (µs): the
/// per-token elementwise work scales with the batch size.
const LAYER_OVERHEAD_PER_SEQUENCE_US: f64 = 7.0;
/// Launch/barrier overhead per FC GeMM (µs): Parlooper synchronizes the 56
/// cores at the end of every GeMM, and each GeMM pays a short ramp-up before
/// the tile pipeline reaches steady state.
const GEMM_LAUNCH_BARRIER_US: f64 = 15.0;

/// Latency breakdown of generating one token.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NextTokenReport {
    /// Model name.
    pub model: String,
    /// Scheme label.
    pub scheme: String,
    /// Engine label.
    pub engine: String,
    /// Which functional decompression backend stands behind the modeled FC
    /// numbers (the engine axis of the compression substrate).
    pub decompress_engine: String,
    /// Batch size.
    pub batch: usize,
    /// Context length (tokens already in the KV cache).
    pub context_tokens: usize,
    /// Seconds spent in FC-layer GeMMs.
    pub fc_seconds: f64,
    /// Seconds spent reading/writing the KV cache during attention.
    pub attention_seconds: f64,
    /// Seconds of per-layer overhead (norms, softmax, residuals, framework).
    pub other_seconds: f64,
}

impl NextTokenReport {
    /// Total next-token latency in seconds.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.fc_seconds + self.attention_seconds + self.other_seconds
    }

    /// Total next-token latency in milliseconds (the unit of Table 4).
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.total_seconds() * 1e3
    }

    /// Fraction of the next-token time spent in FC-layer GeMMs (Table 1).
    #[must_use]
    pub fn fc_fraction(&self) -> f64 {
        if self.total_seconds() == 0.0 {
            0.0
        } else {
            self.fc_seconds / self.total_seconds()
        }
    }

    /// Tokens per second for the whole batch.
    #[must_use]
    pub fn tokens_per_second(&self) -> f64 {
        if self.total_seconds() == 0.0 {
            0.0
        } else {
            self.batch as f64 / self.total_seconds()
        }
    }
}

/// Estimates next-token latency for a model/scheme/engine combination on a
/// simulated machine.
#[derive(Debug, Clone)]
pub struct InferenceEstimator {
    machine: MachineConfig,
    executor: CompressedGemmExecutor,
}

impl InferenceEstimator {
    /// Creates an estimator for a machine.
    #[must_use]
    pub fn new(machine: MachineConfig) -> Self {
        InferenceEstimator {
            executor: CompressedGemmExecutor::new(machine.clone()),
            machine,
        }
    }

    /// Selects the functional decompression backend behind the FC-GeMM
    /// numbers; every [`NextTokenReport`] names it.
    #[must_use]
    pub fn with_decompress_backend(mut self, backend: EngineKind) -> Self {
        self.executor = self.executor.with_decompress_backend(backend);
        self
    }

    /// The underlying compressed-GeMM executor.
    #[must_use]
    pub fn executor(&self) -> &CompressedGemmExecutor {
        &self.executor
    }

    /// Estimates the latency of generating one token.
    #[must_use]
    pub fn next_token(
        &self,
        model: &LlmModel,
        scheme: &CompressionScheme,
        engine: Engine,
        batch: usize,
        context_tokens: usize,
    ) -> NextTokenReport {
        // One steady-state simulation gives the per-tile rate for this
        // (scheme, engine, batch); every FC GeMM then contributes its own
        // worst-loaded-core tile count at that rate.
        let run = self.executor.run(scheme, engine, batch);
        let cycles_per_tile = run.stats.cycles_per_tile();
        let seconds_per_tile = cycles_per_tile / self.machine.frequency_hz();

        let fc_gemms = model.fc_gemms_per_token(batch);
        let fc_seconds: f64 = fc_gemms
            .iter()
            .map(|shape| self.gemm_seconds(shape, seconds_per_tile))
            .sum::<f64>()
            + fc_gemms.len() as f64 * GEMM_LAUNCH_BARRIER_US * 1e-6;

        let attention_seconds = self.attention_seconds(model, batch, context_tokens);
        let layers = model.layers() as f64;
        let other_seconds =
            layers * (LAYER_OVERHEAD_US + LAYER_OVERHEAD_PER_SEQUENCE_US * batch as f64) * 1e-6;

        NextTokenReport {
            model: model.name().to_string(),
            scheme: scheme.label(),
            engine: engine.label(),
            decompress_engine: run.decompress_engine,
            batch,
            context_tokens,
            fc_seconds,
            attention_seconds,
            other_seconds,
        }
    }

    fn gemm_seconds(&self, shape: &GemmShape, seconds_per_tile: f64) -> f64 {
        let partition = Parlooper::partition(shape, self.machine.cores);
        partition.max_tiles_per_core() as f64 * seconds_per_tile
    }

    /// KV-cache traffic time: every layer reads the keys and values of the
    /// whole context for every sequence in the batch, and appends the new
    /// token's keys/values.
    fn attention_seconds(&self, model: &LlmModel, batch: usize, context_tokens: usize) -> f64 {
        let per_layer_read =
            model.layer().kv_bytes_per_token() as f64 * context_tokens as f64 * batch as f64;
        let per_layer_write = model.layer().kv_bytes_per_token() as f64 * batch as f64;
        let total_bytes = (per_layer_read + per_layer_write) * model.layers() as f64;
        total_bytes / self.machine.memory_bandwidth_bytes_per_sec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_compress::CompressionScheme;

    fn hbm() -> InferenceEstimator {
        InferenceEstimator::new(MachineConfig::spr_hbm())
    }

    #[test]
    fn uncompressed_llama_latency_is_in_the_table4_ballpark() {
        // Table 4: 192.3 ms for BF16 Llama2-70B at batch 1 on HBM.
        let report = hbm().next_token(
            &LlmModel::llama2_70b(),
            &CompressionScheme::bf16_dense(),
            Engine::software(),
            1,
            128,
        );
        let ms = report.total_ms();
        assert!(
            (160.0..230.0).contains(&ms),
            "BF16 batch-1 next-token latency {ms:.1} ms"
        );
        assert!(report.fc_fraction() > 0.85);
    }

    #[test]
    fn deca_latency_decreases_monotonically_with_compression() {
        let estimator = hbm();
        let model = LlmModel::llama2_70b();
        let mut last = f64::INFINITY;
        for scheme in [
            CompressionScheme::mxfp4(),
            CompressionScheme::bf8_sparse(0.2),
            CompressionScheme::bf8_sparse(0.05),
        ] {
            let ms = estimator
                .next_token(&model, &scheme, Engine::deca_default(), 1, 128)
                .total_ms();
            assert!(ms < last, "{scheme}: {ms:.1} ms not below {last:.1} ms");
            last = ms;
        }
    }

    #[test]
    fn larger_batches_take_longer_but_give_more_tokens_per_second() {
        let estimator = hbm();
        let model = LlmModel::opt_66b();
        let scheme = CompressionScheme::mxfp4();
        let b1 = estimator.next_token(&model, &scheme, Engine::deca_default(), 1, 128);
        let b16 = estimator.next_token(&model, &scheme, Engine::deca_default(), 16, 128);
        assert!(b16.total_ms() > b1.total_ms());
        assert!(b16.tokens_per_second() > b1.tokens_per_second());
    }

    #[test]
    fn attention_time_grows_with_context_length() {
        let estimator = hbm();
        let model = LlmModel::opt_66b();
        let scheme = CompressionScheme::bf8_sparse(0.2);
        let short = estimator.next_token(&model, &scheme, Engine::deca_default(), 16, 128);
        let long = estimator.next_token(&model, &scheme, Engine::deca_default(), 16, 4096);
        assert!(long.attention_seconds > 10.0 * short.attention_seconds);
        assert!(long.total_ms() > short.total_ms());
        // FC time itself is unchanged by the context length.
        assert!((long.fc_seconds - short.fc_seconds).abs() < 1e-9);
    }

    #[test]
    fn report_accessors_are_consistent() {
        let report = hbm().next_token(
            &LlmModel::llama2_70b(),
            &CompressionScheme::mxfp4(),
            Engine::deca_default(),
            4,
            128,
        );
        let total = report.fc_seconds + report.attention_seconds + report.other_seconds;
        assert!((report.total_seconds() - total).abs() < 1e-15);
        assert!((report.total_ms() - total * 1e3).abs() < 1e-9);
        assert!(report.fc_fraction() > 0.0 && report.fc_fraction() < 1.0);
        assert!((report.tokens_per_second() - 4.0 / total).abs() < 1e-6);
        assert_eq!(report.batch, 4);
        assert_eq!(report.scheme, "Q4");
        assert_eq!(report.decompress_engine, "scalar");
    }

    #[test]
    fn decompress_backend_choice_is_named_but_does_not_move_latency() {
        let model = LlmModel::llama2_70b();
        let scheme = CompressionScheme::bf8_sparse(0.2);
        let scalar = hbm().next_token(&model, &scheme, Engine::deca_default(), 1, 128);
        let word = hbm()
            .with_decompress_backend(EngineKind::WordParallel)
            .next_token(&model, &scheme, Engine::deca_default(), 1, 128);
        assert_eq!(scalar.decompress_engine, "scalar");
        assert_eq!(word.decompress_engine, "word-parallel");
        // All backends are bit-exact, so the modeled latency is identical.
        assert!((scalar.total_ms() - word.total_ms()).abs() < 1e-12);
    }
}
