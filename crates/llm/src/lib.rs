//! LLM next-token inference on the simulated DECA-equipped server.
//!
//! The paper's end-to-end evaluation (§3.1 Table 1, §9.4 Table 4) measures
//! the next-token (generation-phase) latency of Llama2-70B and OPT-66B with
//! software decompression versus DECA. This crate provides:
//!
//! * [`LlmModel`] — layer-exact parameter inventories of both models and the
//!   FC-layer GeMM shapes of one transformer layer,
//! * [`footprint`] — model memory footprints per compression scheme (which
//!   schemes fit in 64 GB of HBM),
//! * [`InferenceEstimator`] — next-token latency estimation: every FC GeMM
//!   is timed through the compressed-GeMM executor (software or DECA
//!   engine), and the non-GeMM stages (attention over the KV cache,
//!   normalization, residuals and framework overhead) are modelled as
//!   bandwidth/overhead-bound work,
//! * [`InferenceEstimator::prefill`] — the prompt-processing phase: the same
//!   weight stream as a decode step, but each decompressed tile feeds
//!   `ceil(prompt/16)` TMUL operations, so long prompts turn compute-bound.
//!   Time-to-first-token in the `deca-serve` serving simulator is built on
//!   this,
//! * [`parallel`] — multi-socket sharded inference: [`ShardSpec`]
//!   (tensor/pipeline parallelism), [`InterconnectModel`] (ring all-reduce
//!   per TP GeMM, point-to-point transfer per pipeline boundary) and
//!   [`ShardedEstimator`], which makes schemes that overflow one socket's
//!   HBM servable at TP ≥ 2 and prices the interconnect they pay for it.
//!
//! # Example
//!
//! ```
//! use deca_llm::{InferenceEstimator, LlmModel};
//! use deca_compress::CompressionScheme;
//! use deca_kernels::Engine;
//! use deca_roofsurface::MachineConfig;
//!
//! let estimator = InferenceEstimator::new(MachineConfig::spr_hbm());
//! let report = estimator.next_token(
//!     &LlmModel::llama2_70b(),
//!     &CompressionScheme::mxfp4(),
//!     Engine::deca_default(),
//!     1,
//!     128,
//! );
//! assert!(report.total_ms() < 150.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod footprint;
mod inference;
mod model;
pub mod parallel;

pub use inference::{DraftSpec, InferenceEstimator, NextTokenReport, PrefillReport};
pub use model::{LayerGeometry, LlmModel};
pub use parallel::{
    InterconnectModel, ShardSpec, ShardedEstimator, ShardedNextTokenReport, ShardedPrefillReport,
};

#[cfg(test)]
mod tests {
    use super::*;
    use deca_compress::CompressionScheme;
    use deca_kernels::Engine;
    use deca_roofsurface::MachineConfig;

    /// Table 4's headline: DECA reduces next-token latency by 1.6×–2.6× over
    /// software decompression, and by 2.5×–5.0× over the uncompressed BF16
    /// model.
    #[test]
    fn table4_speedup_bands() {
        let estimator = InferenceEstimator::new(MachineConfig::spr_hbm());
        for model in [LlmModel::llama2_70b(), LlmModel::opt_66b()] {
            for batch in [1usize, 16] {
                let uncompressed = estimator.next_token(
                    &model,
                    &CompressionScheme::bf16_dense(),
                    Engine::software(),
                    batch,
                    128,
                );
                for scheme in [
                    CompressionScheme::mxfp4(),
                    CompressionScheme::bf8_sparse(0.2),
                    CompressionScheme::bf8_sparse(0.05),
                ] {
                    let sw = estimator.next_token(&model, &scheme, Engine::software(), batch, 128);
                    let deca =
                        estimator.next_token(&model, &scheme, Engine::deca_default(), batch, 128);
                    let vs_sw = sw.total_ms() / deca.total_ms();
                    let vs_uncompressed = uncompressed.total_ms() / deca.total_ms();
                    assert!(
                        (1.2..=3.2).contains(&vs_sw),
                        "{} {} batch {batch}: DECA vs SW {vs_sw:.2}",
                        model.name(),
                        scheme
                    );
                    assert!(
                        (2.0..=6.0).contains(&vs_uncompressed),
                        "{} {} batch {batch}: DECA vs BF16 {vs_uncompressed:.2}",
                        model.name(),
                        scheme
                    );
                }
            }
        }
    }

    /// Table 1: FC-layer GeMMs dominate next-token time — above 95 % with
    /// DDR and 85–90 % with HBM for the uncompressed model.
    #[test]
    fn table1_fc_fraction_bands() {
        for (machine, low, high) in [
            (MachineConfig::spr_ddr(), 0.95, 0.995),
            (MachineConfig::spr_hbm(), 0.84, 0.93),
        ] {
            let estimator = InferenceEstimator::new(machine.clone());
            for batch in [1usize, 4, 16] {
                let report = estimator.next_token(
                    &LlmModel::llama2_70b(),
                    &CompressionScheme::bf16_dense(),
                    Engine::software(),
                    batch,
                    32,
                );
                let frac = report.fc_fraction();
                assert!(
                    (low..=high).contains(&frac),
                    "{} batch {batch}: FC fraction {frac:.3}",
                    machine.name
                );
            }
        }
    }
}
