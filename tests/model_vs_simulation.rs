//! Integration tests checking that the analytical Roof-Surface model and the
//! discrete-event simulator agree where they should — the central
//! methodological claim of the paper (§4, §9.2: "the Roof-Surface model
//! accurately captures the dynamics of the matrix-vector-memory
//! interaction").

use deca_compress::SchemeSet;
use deca_kernels::{avx_model::software_signature, CompressedGemmExecutor, Engine};
use deca_roofsurface::{BoundingFactor, DecaVopModel, MachineConfig, RoofSurface};

/// For every evaluated scheme, on both machines, the simulated software
/// kernel lands at or below the Roof-Surface bound and within 30 % of it.
#[test]
fn software_simulation_respects_and_approaches_the_roof_surface() {
    for machine in [MachineConfig::spr_hbm(), MachineConfig::spr_ddr()] {
        let surface = RoofSurface::for_cpu(&machine);
        let executor = CompressedGemmExecutor::new(machine.clone());
        for scheme in SchemeSet::paper_evaluation() {
            let sig = software_signature(&scheme);
            let bound = surface.flops(&sig, 1) / 1e12;
            let simulated = executor.run(&scheme, Engine::software(), 1).tflops;
            assert!(
                simulated <= bound * 1.02,
                "{} {scheme}: simulated {simulated:.2} above bound {bound:.2}",
                machine.name
            );
            assert!(
                simulated >= bound * 0.70,
                "{} {scheme}: simulated {simulated:.2} far below bound {bound:.2}",
                machine.name
            );
        }
    }
}

/// The DECA simulation agrees with the DECA Roof-Surface: kernels the model
/// classifies as memory-bound show high memory utilization in simulation,
/// and simulated throughput stays within the model's bound.
#[test]
fn deca_simulation_matches_model_classification() {
    let machine = MachineConfig::spr_hbm();
    let surface = RoofSurface::for_deca(&machine);
    let executor = CompressedGemmExecutor::new(machine);
    for scheme in SchemeSet::paper_evaluation() {
        let sig = DecaVopModel::BASELINE.signature(&scheme);
        let bound = surface.flops(&sig, 1) / 1e12;
        let run = executor.run(&scheme, Engine::deca_default(), 1);
        assert!(
            run.tflops <= bound * 1.02,
            "{scheme}: simulated {:.2} above DECA Roof-Surface {bound:.2}",
            run.tflops
        );
        if surface.bounding_factor(&sig) == BoundingFactor::Memory {
            assert!(
                run.stats.memory_utilization() > 0.80,
                "{scheme}: classified MEM-bound but memory utilization is {:.2}",
                run.stats.memory_utilization()
            );
        }
    }
}

/// The binomial bubble model and the per-vOp counting of bubbles agree on
/// the resulting AIX_V ordering across densities, so the DSE conclusions do
/// not depend on which one is used.
#[test]
fn bubble_model_orderings_are_consistent() {
    use deca::{pipeline::VopPipeline, DecaConfig};
    use deca_compress::{generator::WeightGenerator, Compressor};

    let generator = WeightGenerator::new(777);
    let matrix = generator.dense_matrix(32, 64);
    let mut analytic = Vec::new();
    let mut measured = Vec::new();
    for density in [1.0, 0.5, 0.3, 0.1] {
        let scheme = if density < 1.0 {
            deca_compress::CompressionScheme::bf8_sparse(density)
        } else {
            deca_compress::CompressionScheme::bf8_dense()
        };
        analytic.push(DecaVopModel::BASELINE.cycles_per_tile(&scheme));
        let compressor = Compressor::new(scheme);
        let mut pipeline = VopPipeline::new(&DecaConfig::baseline());
        pipeline.configure(scheme.format());
        let mut cycles = 0.0;
        let mut tiles = 0.0;
        for tr in 0..matrix.tile_rows() {
            for tc in 0..matrix.tile_cols() {
                let tile = compressor
                    .compress_tile(&matrix.tile(tr, tc))
                    .expect("compress");
                let (_, timing) = pipeline.process(&tile).expect("pipeline");
                cycles += f64::from(timing.vops + timing.bubbles);
                tiles += 1.0;
            }
        }
        measured.push(cycles / tiles);
    }
    for window in analytic.windows(2) {
        assert!(
            window[0] >= window[1],
            "analytic cycles must fall with sparsity"
        );
    }
    for window in measured.windows(2) {
        assert!(
            window[0] >= window[1],
            "measured cycles must fall with sparsity"
        );
    }
    for (a, m) in analytic.iter().zip(&measured) {
        assert!(
            (a - m).abs() / a < 0.10,
            "analytic {a:.2} vs measured {m:.2}"
        );
    }
}
