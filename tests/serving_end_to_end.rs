//! Workspace-level end-to-end serving test: the full path from the HBM
//! footprint accounting through the calibrated prefill/decode estimator to
//! the continuous-batching scheduler and fleet metrics, across crates and
//! through the public APIs only.
//!
//! Everything here runs the *production* cost model
//! ([`deca_serve::EstimatorCostModel`] over [`deca_llm::InferenceEstimator`]
//! over the simulated compressed-GeMM executor) — no linear stand-ins.

use deca_compress::CompressionScheme;
use deca_kernels::Engine;
use deca_llm::{footprint, InferenceEstimator, LlmModel};
use deca_roofsurface::MachineConfig;
use deca_serve::{
    hbm_kv_budget_tokens, simulate_fleet, EstimatorCostModel, SchedulerKind, ServingConfig,
    ServingSimulator, SloTarget, WorkloadSpec,
};

const MAX_BATCH: usize = 16;

fn served_scheme() -> CompressionScheme {
    CompressionScheme::bf8_sparse(0.05) // Table 4's Q8_5%
}

fn serve(engine: Engine, trace: &deca_serve::RequestTrace) -> deca_serve::ServingReport {
    let model = LlmModel::llama2_70b();
    let scheme = served_scheme();
    let budget = hbm_kv_budget_tokens(&model, &scheme).expect("Q8_5% fits in HBM");
    let cost = EstimatorCostModel::new(MachineConfig::spr_hbm(), model, scheme, engine);
    ServingSimulator::new(cost, ServingConfig::continuous(MAX_BATCH, budget)).run(trace)
}

/// The serving layer's KV budget is exactly the footprint crate's HBM
/// headroom, and a full run against the real estimator never exceeds it.
#[test]
fn kv_budget_comes_from_the_footprint_headroom_and_is_respected() {
    let model = LlmModel::llama2_70b();
    let scheme = served_scheme();
    let budget = hbm_kv_budget_tokens(&model, &scheme).expect("Q8_5% fits in HBM");
    assert_eq!(
        budget as u64,
        footprint::max_kv_tokens(&model, &scheme).unwrap()
    );
    // The budget saturates the headroom: budget tokens fit, budget + 1 do not.
    assert!(footprint::fits_in_hbm_with_kv(&model, &scheme, budget, 1));
    assert!(!footprint::fits_in_hbm_with_kv(
        &model,
        &scheme,
        budget + 1,
        1
    ));
    // Uncompressed BF16 does not even load, so it has no serving budget.
    assert_eq!(
        hbm_kv_budget_tokens(&model, &CompressionScheme::bf16_dense()),
        None
    );

    let trace = WorkloadSpec::chat(1.5, 48, 11).generate();
    let report = serve(Engine::deca_default(), &trace);
    assert_eq!(report.kv_budget_tokens, budget);
    assert!(report.peak_kv_reserved_tokens <= budget);
    assert_eq!(report.completed() + report.rejected, trace.len());
}

/// Time-to-first-token is real: no completed request's TTFT beats the
/// estimator's prefill latency for its own prompt — the serving layer can
/// queue and batch on top of the prefill cost, never undercut it.
#[test]
fn ttft_is_bounded_below_by_the_modeled_prefill_latency() {
    let model = LlmModel::llama2_70b();
    let scheme = served_scheme();
    let estimator = InferenceEstimator::new(MachineConfig::spr_hbm());
    let trace = WorkloadSpec::chat(1.0, 32, 23).generate();
    let report = serve(Engine::deca_default(), &trace);
    assert!(!report.records.is_empty());
    for record in &report.records {
        let prefill = estimator
            .prefill(
                &model,
                &scheme,
                Engine::deca_default(),
                record.prompt_tokens,
                0,
            )
            .total_seconds();
        // Relative epsilon: TTFT is a difference of accumulated simulator
        // timestamps, so an unqueued request can land a few ulps under its
        // own prefill cost.
        assert!(
            record.ttft_s() >= prefill * (1.0 - 1e-9),
            "request {}: TTFT {:.4}s under its own prefill {:.4}s",
            record.id,
            record.ttft_s(),
            prefill
        );
    }
}

/// The fleet headline holds end to end: on the same chat trace, the DECA
/// engine's serving tail and token throughput beat software decompression.
#[test]
fn deca_serves_the_same_trace_with_a_better_tail_than_software() {
    let trace = WorkloadSpec::chat(1.2, 64, 31).generate();
    let software = serve(Engine::software(), &trace);
    let deca = serve(Engine::deca_default(), &trace);

    // Same admission decisions (the budget is engine-independent)...
    assert_eq!(software.rejected, deca.rejected);
    assert_eq!(software.completed(), deca.completed());

    let sw = software.metrics();
    let dc = deca.metrics();
    // ...but every phase is faster on DECA, so the whole distribution is.
    assert!(
        dc.ttft.p99_s < sw.ttft.p99_s,
        "{} vs {}",
        dc.ttft.p99_s,
        sw.ttft.p99_s
    );
    assert!(
        dc.tpot.p99_s < sw.tpot.p99_s,
        "{} vs {}",
        dc.tpot.p99_s,
        sw.tpot.p99_s
    );
    assert!(dc.e2e.p99_s < sw.e2e.p99_s);
    assert!(dc.tokens_per_second > sw.tokens_per_second);
    let slo = SloTarget::interactive();
    assert!(deca.goodput_rps(&slo) >= software.goodput_rps(&slo));
}

/// Continuous batching beats the static run-to-completion baseline on a
/// bursty trace with the real cost model, and a 4-replica fleet conserves
/// the trace while shortening the tail.
#[test]
fn continuous_batching_and_replicas_absorb_bursts() {
    let machine = MachineConfig::spr_hbm();
    let model = LlmModel::llama2_70b();
    let scheme = served_scheme();
    let budget = hbm_kv_budget_tokens(&model, &scheme).expect("fits");
    let trace = WorkloadSpec::bursty_chat(0.8, 96, 59).generate();
    let slo = SloTarget::interactive();

    // One memoized cost model serves both scheduler runs.
    let cost = EstimatorCostModel::new(
        machine.clone(),
        model.clone(),
        scheme,
        Engine::deca_default(),
    );
    let config_for = |kind| ServingConfig::continuous(MAX_BATCH, budget).with_scheduler(kind);
    let mut sim = ServingSimulator::new(cost, config_for(SchedulerKind::ContinuousBatching));
    let continuous = sim.run(&trace);
    let mut sim = ServingSimulator::new(
        sim.into_cost_model(),
        config_for(SchedulerKind::StaticBatching),
    );
    let static_ = sim.run(&trace);
    assert!(continuous.metrics().ttft.p99_s <= static_.metrics().ttft.p99_s);
    assert!(continuous.goodput_rps(&slo) >= static_.goodput_rps(&slo));

    let config = ServingConfig::continuous(MAX_BATCH, budget);
    let one = simulate_fleet(
        &machine,
        &model,
        &scheme,
        Engine::deca_default(),
        &config,
        1,
        &trace,
    );
    let four = simulate_fleet(
        &machine,
        &model,
        &scheme,
        Engine::deca_default(),
        &config,
        4,
        &trace,
    );
    assert_eq!(four.records().len() + four.rejected(), trace.len());
    assert!(four.metrics().e2e.p99_s <= one.metrics().e2e.p99_s);
}
