//! Workspace-level integration tests: the full path from weight generation
//! through compression, DECA decompression and the functional GeMM, across
//! crates and through the public APIs only.

use deca::{DecaConfig, DecaPe};
use deca_compress::{
    generator::WeightGenerator, CompressionScheme, Compressor, Decompressor, SchemeSet,
    WeightMatrix, TILE_COLS, TILE_ROWS,
};
use deca_kernels::functional;
use deca_numerics::Bf16;

/// Compress → DECA-decompress → GeMM gives (almost) the same result as the
/// dense GeMM, for every scheme the paper evaluates.
#[test]
fn compressed_gemm_matches_dense_reference_within_quantization_error() {
    let weights = WeightGenerator::new(1001).dense_matrix(96, 64);
    let activations = WeightGenerator::new(1002)
        .with_std_dev(0.5)
        .dense_matrix(4, 96);
    let dense_out = functional::gemm_dense(&activations, &weights);

    for scheme in [
        CompressionScheme::bf8_dense(),
        CompressionScheme::mxfp4(),
        CompressionScheme::bf16_sparse(0.9),
    ] {
        let compressed = Compressor::new(scheme)
            .without_pruning()
            .compress_matrix(&weights)
            .expect("compress");
        let out = functional::gemm_compressed(&activations, &compressed).expect("gemm");
        let err = functional::relative_rms_error(&dense_out, &out);
        // E5M2 carries ~5 % RMS relative error per weight, and the error of a
        // dot product of independently quantized weights stays at roughly the
        // per-weight level (it does not average down), so the 8-bit bound is
        // ~8 %.
        let tolerance = match scheme.format().bits() {
            16 => 1e-6,
            8 => 0.08,
            _ => 0.18,
        };
        assert!(err <= tolerance, "{scheme}: relative RMS error {err}");
    }
}

/// A DECA PE and the reference decompressor reconstruct byte-identical
/// matrices, tile by tile, for a whole compressed matrix.
#[test]
fn deca_pe_reconstruction_is_bit_exact_across_a_matrix() {
    let weights = WeightGenerator::new(2002).dense_matrix(48, 96);
    for scheme in SchemeSet::paper_evaluation() {
        let compressed = Compressor::new(scheme)
            .compress_matrix(&weights)
            .expect("compress");
        let reference = Decompressor::new();
        let mut pe = DecaPe::new(DecaConfig::baseline());
        for tr in 0..compressed.tile_rows() {
            for tc in 0..compressed.tile_cols() {
                let tile = compressed.tile(tr, tc);
                let expected = reference.decompress_tile(tile).expect("reference");
                let produced = pe.process_tile(tile).expect("pe").tile;
                assert_eq!(produced, expected, "{scheme} tile ({tr},{tc})");
            }
        }
    }
}

/// Pruning keeps exactly the number of nonzeros the scheme's density asks
/// for, and the decompressed matrix reports that density.
#[test]
fn pruned_density_is_respected_end_to_end() {
    let weights = WeightGenerator::new(3003).dense_matrix(64, 64);
    for density in [0.5, 0.2, 0.05] {
        let scheme = CompressionScheme::bf8_sparse(density);
        let compressed = Compressor::new(scheme)
            .compress_matrix(&weights)
            .expect("compress");
        assert!((compressed.density() - density).abs() < 0.01);
        let restored = Decompressor::new()
            .decompress_matrix(&compressed)
            .expect("decompress");
        assert!((restored.density() - density).abs() < 0.01);
    }
}

/// The DECA PE handles a hand-constructed worst-case tile (every element in
/// one row, empty elsewhere) identically to the reference.
#[test]
fn pathological_tiles_are_handled() {
    let mut values = vec![0.0f32; TILE_ROWS * TILE_COLS];
    for c in 0..TILE_COLS {
        values[5 * TILE_COLS + c] = (c as f32 + 1.0) * 0.125;
    }
    let matrix = WeightMatrix::from_data(TILE_ROWS, TILE_COLS, values).expect("matrix");
    let scheme = CompressionScheme::bf8_sparse(0.0625); // exactly one dense row
    let compressed = Compressor::new(scheme)
        .without_pruning()
        .compress_tile(&matrix.tile(0, 0))
        .expect("compress");
    let mut pe = DecaPe::new(DecaConfig::baseline());
    let produced = pe.process_tile(&compressed).expect("pe").tile;
    for c in 0..TILE_COLS {
        let expected = Bf16::from_f32((c as f32 + 1.0) * 0.125);
        // BF8 quantization error applies, but position and sign must hold.
        let got = produced.get(5, c);
        assert!(!got.is_zero());
        assert!((got.to_f32() - expected.to_f32()).abs() / expected.to_f32() < 0.13);
    }
    assert_eq!(produced.nonzero_count(), TILE_COLS);
}

/// The engine axis end to end: one compressed matrix streams through every
/// pluggable backend into the trace-driven simulator and the functional
/// GeMM, and the vOp pipeline validates against each backend — all layers
/// agreeing on one bit-exact ground truth.
#[test]
fn engine_axis_threads_through_every_layer() {
    use deca_compress::EngineKind;

    let weights = WeightGenerator::new(4004).dense_matrix(96, 128);
    let activations = WeightGenerator::new(4005)
        .with_std_dev(0.5)
        .dense_matrix(2, 96);
    let scheme = CompressionScheme::bf8_sparse(0.2);
    let compressed = Compressor::new(scheme)
        .compress_matrix(&weights)
        .expect("compress");

    // Functional layer: engine-parameterized GeMM is backend-independent.
    let reference_gemm = functional::gemm_compressed(&activations, &compressed).expect("gemm");
    for kind in EngineKind::all() {
        let out =
            functional::gemm_compressed_with(kind.build().as_ref(), &activations, &compressed)
                .expect("gemm");
        assert_eq!(out, reference_gemm, "{kind}");
    }

    // Simulation layer: traces generated through any engine are identical
    // and replay the matrix's exact bytes.
    let machine = deca_roofsurface::MachineConfig::spr_hbm();
    let executor = deca_kernels::CompressedGemmExecutor::new(machine.clone());
    let model = executor.exec_model(&scheme, &deca_kernels::Engine::deca_default());
    let sim = deca_sim::GemmSimulation::new(machine, deca_sim::CacheConfig::spr());
    let mut traced_cycles = Vec::new();
    for kind in EngineKind::all() {
        let trace =
            deca_sim::MemoryTrace::from_matrix(&compressed, kind.build().as_ref()).expect("trace");
        assert_eq!(trace.engine(), kind.label());
        let stats = sim.run_trace(&model, &trace);
        assert!((stats.bytes_per_core - compressed.total_bytes() as f64).abs() < 1e-6);
        traced_cycles.push(stats.total_cycles);
    }
    assert!(traced_cycles.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9));

    // Core layer: the PE pipeline validates bit-exactly against every
    // backend on every tile of the matrix.
    let mut pipeline = deca::pipeline::VopPipeline::new(&DecaConfig::baseline());
    pipeline.configure(scheme.format());
    for kind in EngineKind::all() {
        let engine = kind.build();
        pipeline
            .process_validated(compressed.tile(0, 0), engine.as_ref())
            .expect("pipeline agrees with engine");
    }

    // LLM layer: the report names the backend that stands behind it.
    let report = deca_llm::InferenceEstimator::new(deca_roofsurface::MachineConfig::spr_hbm())
        .with_decompress_backend(EngineKind::WordParallel)
        .next_token(
            &deca_llm::LlmModel::llama2_70b(),
            &scheme,
            deca_kernels::Engine::deca_default(),
            1,
            128,
        );
    assert_eq!(report.decompress_engine, "word-parallel");
}
