//! End-to-end test of the sharding layer: `deca_llm::parallel` driving the
//! full serving stack through `deca-serve`'s sharded cost model — no linear
//! stand-ins. The scenario is the ROADMAP's production one: a Table 4
//! scheme that one socket cannot serve (dense Q8's weights overflow 64 GB;
//! Q4's weights fit but its KV working set does not) becomes servable at
//! TP ≥ 2, with the interconnect priced in.

use deca_compress::CompressionScheme;
use deca_kernels::Engine;
use deca_llm::{footprint, parallel, InterconnectModel, LlmModel, ShardSpec, ShardedEstimator};
use deca_roofsurface::MachineConfig;
use deca_serve::{
    min_sockets_for_slo, sharded_kv_budget_tokens, ArrivalProcess, EstimatorCostModel,
    LengthDistribution, RequestRecord, ServingConfig, ServingSimulator, ShardingSearchSpec,
    SloTarget, WorkloadSpec,
};

fn small_chat(rate: f64, requests: usize, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        arrivals: ArrivalProcess::Poisson { rate_per_sec: rate },
        prompt_lengths: LengthDistribution::Bimodal {
            short: 128,
            long: 1024,
            long_fraction: 0.1,
        },
        output_lengths: LengthDistribution::Uniform { min: 32, max: 96 },
        requests,
        seed,
    }
}

/// Dense Q8 cannot be served from one socket's HBM at all, but a TP2 plan
/// restores a KV budget and a full serving run completes on it with the
/// production (estimator-backed, sharded) cost model.
#[test]
fn unservable_scheme_serves_at_tp2() {
    let machine = MachineConfig::spr_hbm();
    let model = LlmModel::llama2_70b();
    let q8 = CompressionScheme::bf8_dense();

    // One socket: the weights alone overflow (the §8 capacity observation),
    // so there is no budget to admit against.
    assert!(!footprint::fits_in_hbm(&model, &q8));
    assert_eq!(footprint::max_kv_tokens(&model, &q8), None);
    assert_eq!(
        sharded_kv_budget_tokens(&model, &q8, &ShardSpec::single()),
        None
    );

    // TP2: every socket holds half the output features; the budget exists
    // and a real trace drains against it.
    let spec = ShardSpec::tp(2);
    let budget = sharded_kv_budget_tokens(&model, &q8, &spec).expect("Q8 dense fits at TP2");
    assert!(budget > 50_000, "budget {budget}");
    let trace = small_chat(1.0, 24, 7).generate();
    let cost = EstimatorCostModel::sharded(
        machine.clone(),
        model.clone(),
        q8,
        Engine::deca_default(),
        spec,
        InterconnectModel::spr_upi(),
    );
    let report = ServingSimulator::new(cost, ServingConfig::continuous(8, budget)).run(&trace);
    assert_eq!(report.completed() + report.rejected, trace.len());
    assert_eq!(report.rejected, 0);
    assert!(report.peak_kv_reserved_tokens <= budget);

    // TTFT is real: nothing undercuts the sharded prefill of its own
    // prompt (queueing and batching only ever add).
    let estimator = ShardedEstimator::new(machine, spec, InterconnectModel::spr_upi());
    for record in &report.records {
        let floor = estimator
            .prefill(&model, &q8, Engine::deca_default(), record.prompt_tokens, 0)
            .total_seconds();
        assert!(
            record.ttft_s() >= floor * 0.999,
            "request {}: TTFT {:.3}s below its own prefill {:.3}s",
            record.id,
            record.ttft_s(),
            floor
        );
    }
}

/// On the same sharded plan and trace, DECA beats software decompression
/// at the decode tail — the single-socket Table 4 story survives sharding.
#[test]
fn deca_beats_software_on_a_sharded_replica() {
    let machine = MachineConfig::spr_hbm();
    let model = LlmModel::llama2_70b();
    let q4 = CompressionScheme::mxfp4();
    let spec = ShardSpec::tp(2);
    let budget = sharded_kv_budget_tokens(&model, &q4, &spec).expect("Q4 fits at TP2");
    let trace = small_chat(1.5, 32, 13).generate();
    let run = |engine| {
        let cost = EstimatorCostModel::sharded(
            machine.clone(),
            model.clone(),
            q4,
            engine,
            spec,
            InterconnectModel::spr_upi(),
        );
        ServingSimulator::new(cost, ServingConfig::continuous(16, budget)).run(&trace)
    };
    let sw = run(Engine::software());
    let deca = run(Engine::deca_default());
    assert_eq!(sw.completed(), deca.completed());
    let mean_tpot = |records: &[RequestRecord]| {
        records.iter().map(RequestRecord::tpot_s).sum::<f64>() / records.len() as f64
    };
    assert!(
        mean_tpot(&deca.records) < mean_tpot(&sw.records),
        "DECA mean TPOT {:.1} ms vs software {:.1} ms",
        mean_tpot(&deca.records) * 1e3,
        mean_tpot(&sw.records) * 1e3
    );
    assert!(deca.metrics().e2e.p99_s <= sw.metrics().e2e.p99_s);
}

/// The min-socket search reproduces the `bench_sharding` acceptance story:
/// Q4's weights fit one socket but its 131 k-token KV working set does
/// not, and DECA meets the interactive p99 SLO at TP ≥ 2.
#[test]
fn q4_working_set_needs_sharding_and_deca_serves_it() {
    let machine = MachineConfig::spr_hbm();
    let model = LlmModel::llama2_70b();
    let q4 = CompressionScheme::mxfp4();
    let working_set = 16 * 8192;

    // The one-socket contradiction: weights fit, weights + working set
    // don't.
    assert!(footprint::fits_in_hbm(&model, &q4));
    assert!(!footprint::fits_in_hbm_with_kv(&model, &q4, 8192, 16));
    assert!(!parallel::sharded_fits_in_hbm_with_kv(
        &model,
        &q4,
        &ShardSpec::single(),
        8192,
        16
    ));
    assert!(parallel::sharded_fits_in_hbm_with_kv(
        &model,
        &q4,
        &ShardSpec::tp(2),
        8192,
        16
    ));

    let search = ShardingSearchSpec {
        slo: SloTarget::interactive(),
        workload: small_chat(0.4, 16, 17),
        max_batch: 16,
        required_kv_tokens: working_set,
    };
    let plans = [ShardSpec::single(), ShardSpec::tp(2), ShardSpec::tp(4)];
    let winner = min_sockets_for_slo(
        &machine,
        &model,
        &q4,
        Engine::deca_default(),
        InterconnectModel::spr_upi(),
        &plans,
        &search,
    )
    .expect("DECA serves the working set at some TP degree");
    assert!(
        winner.spec.sockets() >= 2,
        "one socket cannot hold the working set, got {}",
        winner.spec
    );
    assert!(winner.feasible);
    assert!(winner.p99_tpot_s <= search.slo.tpot_s);
    assert!(winner.p99_ttft_s <= search.slo.ttft_s);
}
