//! Workspace-level end-to-end test of the paged KV-cache subsystem: the
//! full path from the HBM footprint accounting (block pool sizing) through
//! the calibrated cached-prefix prefill estimator to the paged scheduler
//! with radix-tree prefix sharing and preemption-by-recompute, across
//! crates and through the public APIs only.
//!
//! Everything here runs the *production* cost model
//! ([`deca_serve::EstimatorCostModel`] over the sharded estimator over the
//! simulated compressed-GeMM executor) — no linear stand-ins.

use deca_compress::CompressionScheme;
use deca_kernels::Engine;
use deca_llm::{footprint, parallel, InterconnectModel, LlmModel, ShardSpec};
use deca_roofsurface::MachineConfig;
use deca_serve::{
    hbm_kv_budget_tokens, EstimatorCostModel, ServingConfig, ServingSimulator,
    SharedPrefixChatSpec, SloTarget,
};

const MAX_BATCH: usize = 16;
const BLOCK_SIZE: usize = 32;

fn served_scheme() -> CompressionScheme {
    CompressionScheme::bf8_sparse(0.05) // Table 4's Q8_5%
}

fn chat_trace() -> deca_serve::RequestTrace {
    SharedPrefixChatSpec {
        turns_per_session: 3,
        ..SharedPrefixChatSpec::fleet(0.4, 8, 67)
    }
    .generate()
}

fn serve(config: ServingConfig, trace: &deca_serve::RequestTrace) -> deca_serve::ServingReport {
    let cost = EstimatorCostModel::new(
        MachineConfig::spr_hbm(),
        LlmModel::llama2_70b(),
        served_scheme(),
        Engine::deca_default(),
    );
    ServingSimulator::new(cost, config).run(trace)
}

/// The paged block pool is exactly the footprint crate's token budget in
/// whole blocks, for the single-socket and the sharded view alike.
#[test]
fn block_pool_derives_from_the_footprint_headroom() {
    let model = LlmModel::llama2_70b();
    let scheme = served_scheme();
    let tokens = footprint::max_kv_tokens(&model, &scheme).expect("Q8_5% fits");
    let blocks = footprint::max_kv_blocks(&model, &scheme, BLOCK_SIZE).expect("Q8_5% fits");
    assert_eq!(blocks, tokens / BLOCK_SIZE as u64);
    assert_eq!(
        parallel::sharded_max_kv_blocks(&model, &scheme, &ShardSpec::single(), BLOCK_SIZE),
        Some(blocks)
    );

    let budget = hbm_kv_budget_tokens(&model, &scheme).expect("fits");
    let config = ServingConfig::paged(MAX_BATCH, budget, BLOCK_SIZE);
    let report = serve(config, &chat_trace());
    let paged = report.paged.expect("paged stats");
    assert_eq!(paged.total_blocks as u64, blocks);
    // The report's budget is the pool in tokens (whole blocks only).
    assert_eq!(report.kv_budget_tokens as u64, blocks * BLOCK_SIZE as u64);
    assert!(paged.peak_allocated_blocks <= paged.total_blocks);
}

/// The acceptance headline, end to end: request conservation
/// (`completed + rejected == offered`) holds under preemption on a pool
/// small enough to thrash, and the preemption counters prove it happened.
#[test]
fn requests_are_conserved_under_preemption() {
    // A fast-arriving conversation wave: 8 concurrent ~700-token contexts
    // whose private suffixes alone overflow a 48-block pool even with the
    // system prompt fully shared — allocation must fail and preemption
    // must fire.
    let trace = SharedPrefixChatSpec {
        turns_per_session: 3,
        ..SharedPrefixChatSpec::fleet(3.0, 8, 67)
    }
    .generate();
    let config = ServingConfig::paged(MAX_BATCH, 1_536, BLOCK_SIZE).with_prefix_sharing(true);
    let report = serve(config, &trace);
    let paged = report.paged.expect("paged stats");
    assert!(paged.preemptions > 0, "the pool must have run dry");
    assert_eq!(
        report.completed() + report.rejected,
        trace.len(),
        "conservation under preemption"
    );
    assert_eq!(report.admitted, report.completed());
    // Preempted-and-resumed requests still have sane records.
    for r in &report.records {
        assert!(r.first_token_s > r.arrival_s);
        assert!(r.completion_s >= r.first_token_s);
    }
}

/// Prefix sharing pays end to end with the real estimator: on the same
/// shared-prefix trace and the same resources, paged+prefix admission
/// reports a positive hit rate, a shorter TTFT tail, and no worse goodput
/// than reserve-up-front.
#[test]
fn prefix_sharing_beats_reserve_up_front_on_the_chat_trace() {
    let model = LlmModel::llama2_70b();
    let budget = hbm_kv_budget_tokens(&model, &served_scheme()).expect("fits");
    let trace = chat_trace();

    let reserve = serve(ServingConfig::continuous(MAX_BATCH, budget), &trace);
    let paged_prefix = serve(
        ServingConfig::paged(MAX_BATCH, budget, BLOCK_SIZE).with_prefix_sharing(true),
        &trace,
    );
    assert_eq!(reserve.completed(), paged_prefix.completed());

    let stats = paged_prefix.paged.expect("paged stats");
    assert!(
        stats.prefix_hit_rate() > 0.3,
        "conversation turns must hit the radix cache, got {}",
        stats.prefix_hit_rate()
    );
    let slo = SloTarget::interactive();
    assert!(
        paged_prefix.metrics().ttft.p99_s < reserve.metrics().ttft.p99_s,
        "cached prefills must shorten the TTFT tail: {} vs {}",
        paged_prefix.metrics().ttft.p99_s,
        reserve.metrics().ttft.p99_s
    );
    assert!(paged_prefix.goodput_rps(&slo) >= reserve.goodput_rps(&slo));
}

/// The paged policy composes with sharding: a TP2 replica prices its
/// cached prefills through the sharded estimator and still conserves the
/// trace, with a bigger block pool than one socket.
#[test]
fn paged_serving_composes_with_tensor_parallel_sharding() {
    let model = LlmModel::llama2_70b();
    let scheme = served_scheme();
    let tp2 = ShardSpec::tp(2);
    let single_blocks =
        parallel::sharded_max_kv_blocks(&model, &scheme, &ShardSpec::single(), BLOCK_SIZE)
            .expect("fits");
    let tp2_blocks =
        parallel::sharded_max_kv_blocks(&model, &scheme, &tp2, BLOCK_SIZE).expect("fits");
    assert!(
        tp2_blocks > single_blocks,
        "sharded weights leave more room"
    );

    let trace = chat_trace();
    let cost = EstimatorCostModel::sharded(
        MachineConfig::spr_hbm(),
        model,
        scheme,
        Engine::deca_default(),
        tp2,
        InterconnectModel::spr_upi(),
    );
    let config = ServingConfig::paged(MAX_BATCH, tp2_blocks as usize * BLOCK_SIZE, BLOCK_SIZE)
        .with_prefix_sharing(true);
    let report = ServingSimulator::new(cost, config).run(&trace);
    assert_eq!(report.completed() + report.rejected, trace.len());
    assert!(report.paged.expect("paged stats").prefix_hit_tokens > 0);
}
