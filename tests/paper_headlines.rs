//! Workspace-level integration tests of the paper's headline claims, run
//! through the public APIs exactly as a downstream user would.

use deca::{area::AreaEstimate, DecaConfig, IntegrationConfig};
use deca_compress::{CompressionScheme, SchemeSet};
use deca_kernels::{CompressedGemmExecutor, Engine};
use deca_llm::{InferenceEstimator, LlmModel};
use deca_roofsurface::{DecaVopModel, DesignSpaceExploration, MachineConfig};

/// Abstract headline: "DECA accelerates the execution of compressed GeMMs by
/// up to 4x over the use of optimized Intel software kernels" (HBM).
#[test]
fn headline_gemm_speedup_up_to_4x() {
    let executor = CompressedGemmExecutor::new(MachineConfig::spr_hbm());
    let best = SchemeSet::paper_evaluation()
        .into_iter()
        .map(|scheme| {
            let sw = executor.run(&scheme, Engine::software(), 1);
            let deca = executor.run(&scheme, Engine::deca_default(), 1);
            deca.speedup_over(&sw)
        })
        .fold(0.0f64, f64::max);
    assert!(
        (3.2..=5.5).contains(&best),
        "best DECA-over-software speedup {best:.2} (paper: up to 4x)"
    );
}

/// Abstract headline: "DECA reduces the next-token generation time of
/// Llama2-70B and OPT-66B by 1.6x–2.6x over the software-only solution".
#[test]
fn headline_llm_speedup_band() {
    let estimator = InferenceEstimator::new(MachineConfig::spr_hbm());
    let mut speedups = Vec::new();
    for model in [LlmModel::llama2_70b(), LlmModel::opt_66b()] {
        for scheme in [
            CompressionScheme::mxfp4(),
            CompressionScheme::bf8_sparse(0.05),
        ] {
            let sw = estimator.next_token(&model, &scheme, Engine::software(), 1, 128);
            let deca = estimator.next_token(&model, &scheme, Engine::deca_default(), 1, 128);
            speedups.push(sw.total_ms() / deca.total_ms());
        }
    }
    let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().copied().fold(0.0f64, f64::max);
    assert!(min > 1.3, "minimum LLM speedup {min:.2}");
    assert!(max < 3.2, "maximum LLM speedup {max:.2}");
}

/// §9.2: the Roof-Surface DSE picks {W=32, L=8}, the under-provisioned
/// design loses about 2x in simulation, and the over-provisioned one gains
/// almost nothing.
#[test]
fn headline_dse_sizing() {
    let machine = MachineConfig::spr_hbm();
    let dse = DesignSpaceExploration::new(machine.clone(), SchemeSet::paper_evaluation(), 4);
    let pick = dse
        .recommend(&DesignSpaceExploration::default_grid())
        .expect("qualifying design");
    assert_eq!(pick.point.model, DecaVopModel::BASELINE);

    let executor = CompressedGemmExecutor::new(machine);
    let geomean = |config: DecaConfig| {
        let sweep = SchemeSet::q8_density_sweep();
        let log_sum: f64 = sweep
            .iter()
            .map(|s| {
                executor
                    .run(s, Engine::deca(config, IntegrationConfig::full()), 4)
                    .tflops
                    .ln()
            })
            .sum();
        (log_sum / sweep.len() as f64).exp()
    };
    let under = geomean(DecaConfig::underprovisioned());
    let best = geomean(DecaConfig::baseline());
    let over = geomean(DecaConfig::overprovisioned());
    assert!(
        best / under > 1.6,
        "best vs under-provisioned {:.2}x (paper: 2x)",
        best / under
    );
    assert!(
        over / best < 1.05,
        "over-provisioned gains {:.3}x (paper: < 1.03x)",
        over / best
    );
}

/// §8: 56 DECA PEs cost about 2.51 mm², under 0.2 % of the SPR die.
#[test]
fn headline_area_overhead() {
    let estimate = AreaEstimate::for_config(&DecaConfig::baseline());
    assert!((estimate.total_mm2(56) - 2.51).abs() < 0.05);
    assert!(estimate.fraction_of_die(56, deca::area::SPR_DIE_MM2) < 0.002);
}

/// Fig. 14: 16 DECA-augmented cores outperform 56 conventional cores on the
/// DDR machine (averaged across compression schemes).
#[test]
fn headline_core_count_reduction() {
    let schemes = SchemeSet::paper_evaluation();
    let average = |cores: usize, engine: fn() -> Engine| {
        let machine = MachineConfig::spr_ddr().with_cores(cores);
        let executor = CompressedGemmExecutor::new(machine);
        schemes
            .iter()
            .map(|s| executor.run(s, engine(), 4).tflops)
            .sum::<f64>()
            / schemes.len() as f64
    };
    let deca_16 = average(16, Engine::deca_default);
    let software_56 = average(56, Engine::software);
    assert!(
        deca_16 > software_56,
        "16 DECA cores ({deca_16:.2} TF) should beat 56 software cores ({software_56:.2} TF)"
    );
}
