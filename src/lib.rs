//! Umbrella crate for the DECA reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency root. See the individual crates for the actual APIs:
//! [`deca`], [`deca_roofsurface`], [`deca_sim`], [`deca_kernels`],
//! [`deca_compress`], [`deca_numerics`], [`deca_llm`], and [`deca_serve`].
pub use deca;
pub use deca_compress;
pub use deca_kernels;
pub use deca_llm;
pub use deca_numerics;
pub use deca_roofsurface;
pub use deca_serve;
pub use deca_sim;
