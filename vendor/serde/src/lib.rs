//! Offline stub of `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names in both the macro
//! namespace (no-op derives from the stub `serde_derive`) and the trait
//! namespace, so `#[derive(serde::Serialize, serde::Deserialize)]` compiles
//! exactly as it would against the real crate. No serialization machinery is
//! included because nothing in this workspace serializes through serde yet.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (the stub derive emits no impls).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (the stub derive emits no impls).
pub trait Deserialize<'de>: Sized {}
