//! Offline stub of `proptest`.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), range and
//! tuple strategies, [`any`], `prop::bool::ANY`, [`collection::vec`],
//! `prop_map`, and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros. Cases are sampled from a deterministic per-test RNG, so failures
//! reproduce run-to-run. Unlike the real proptest there is no shrinking: a
//! failing case reports its inputs via the assertion message instead.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (the real crate's `test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a test case did not pass: rejected by `prop_assume!` or failed an
/// assertion.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs did not satisfy a `prop_assume!` precondition.
    Reject(String),
    /// A `prop_assert!`-family assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }

    /// Builds the rejection variant.
    #[must_use]
    pub fn reject(message: String) -> Self {
        TestCaseError::Reject(message)
    }
}

/// Deterministic SplitMix64 stream seeding each test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG determined by the test name and case index, so every run of
    /// the suite samples identical cases.
    #[must_use]
    pub fn deterministic(test_name: &str, case_index: u64) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for byte in test_name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: seed ^ case_index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (the only combinator this
    /// workspace uses).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.sample(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width u64 range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                // `start + unit * span` can round up to exactly `end` when
                // ulp(end) is large; keep the half-open contract.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Map [0, 1) onto [lo, hi] with the endpoint reachable by
                // scaling through the next representable value.
                let unit = rng.unit_f64() as $t;
                let v = lo + unit * (hi - lo) / (1.0 - <$t>::EPSILON);
                v.min(hi)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
#[must_use]
pub const fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Namespaced strategies, mirroring `proptest::prop`.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        /// Either boolean, uniformly.
        pub const ANY: crate::Any<::core::primitive::bool> =
            crate::any::<::core::primitive::bool>();
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive bound on generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { min: len, max: len }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fails the current test case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                ::std::format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current test case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                left,
                right,
                ::std::format!($($fmt)+)
            )));
        }
    }};
}

/// Rejects the current test case (resampled without counting) if the
/// precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(::std::format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items with outer attributes
/// (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: one test function per munch.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (
        ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case_index: u64 = 0;
            while accepted < config.cases {
                let mut rng = $crate::TestRng::deterministic(stringify!($name), case_index);
                case_index += 1;
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let case: ::core::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match case {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "proptest '{}': too many prop_assume! rejections ({})",
                            stringify!($name),
                            rejected
                        );
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest '{}' failed at deterministic case {}: {}",
                            stringify!($name),
                            case_index - 1,
                            message
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges", 0);
        for _ in 0..1000 {
            let v = crate::Strategy::sample(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = crate::Strategy::sample(&(-2.0f64..=2.0), &mut rng);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::deterministic("vecs", 1);
        for _ in 0..200 {
            let v = crate::Strategy::sample(&collection::vec(any::<bool>(), 1..600), &mut rng);
            assert!((1..600).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro machinery itself: sampling, mapping, assume and assert.
        #[test]
        fn macro_roundtrip(x in 0u64..1000, flag in any::<bool>(), pair in (1usize..8, 0.0f64..1.0).prop_map(|(n, f)| (n * 2, f))) {
            prop_assume!(x != 999);
            prop_assert!(x < 1000, "x was {}", x);
            prop_assert_eq!(pair.0 % 2, 0);
            let _ = flag;
        }
    }
}
