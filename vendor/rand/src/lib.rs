//! Offline stub of `rand` 0.8.
//!
//! Implements exactly the API subset this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`, and
//! `distributions::{Distribution, Bernoulli}` — on top of a SplitMix64
//! generator. The stream differs from the real `StdRng` (ChaCha12), but all
//! callers only rely on determinism-for-a-seed and uniformity, never on the
//! exact stream.

use std::ops::Range;

/// The core of a random number generator: a 64-bit output stream.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

/// Random distributions and the [`Distribution`](distributions::Distribution) trait.
pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution: unit-interval floats, uniform integers.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
            // 53 high bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    /// Error returned by [`Bernoulli::new`] for probabilities outside [0, 1].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct BernoulliError;

    impl std::fmt::Display for BernoulliError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "probability is outside [0, 1]")
        }
    }

    impl std::error::Error for BernoulliError {}

    /// The Bernoulli distribution: `true` with probability `p`.
    #[derive(Debug, Clone, Copy)]
    pub struct Bernoulli {
        p: f64,
    }

    impl Bernoulli {
        /// Creates a Bernoulli distribution with success probability `p`.
        ///
        /// # Errors
        ///
        /// Returns [`BernoulliError`] if `p` is not in `[0, 1]`.
        pub fn new(p: f64) -> Result<Self, BernoulliError> {
            if (0.0..=1.0).contains(&p) {
                Ok(Bernoulli { p })
            } else {
                Err(BernoulliError)
            }
        }
    }

    impl Distribution<bool> for Bernoulli {
        fn sample<R: Rng>(&self, rng: &mut R) -> bool {
            let unit: f64 = Standard.sample(rng);
            unit < self.p
        }
    }
}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 in this stub).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Bernoulli, Distribution};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn bernoulli_hits_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let bern = Bernoulli::new(0.3).unwrap();
        let hits = (0..100_000).filter(|_| bern.sample(&mut rng)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn bernoulli_rejects_invalid_probability() {
        assert!(Bernoulli::new(-0.1).is_err());
        assert!(Bernoulli::new(1.1).is_err());
    }
}
