//! Offline stub of `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the API subset this
//! workspace's benches use: `Criterion::{bench_function, benchmark_group}`,
//! `BenchmarkGroup::{bench_with_input, throughput, finish}`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros. It honours the CLI flags CI relies on:
//! `--test` (run every benchmark once, no timing) and `--quick` (short
//! measurement), ignores the `--bench` flag cargo passes, and treats any
//! bare argument as a substring filter. There is no statistical analysis —
//! it reports the arithmetic-mean time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group (or standalone).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter rendering alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation for a benchmark (recorded, reported per-second).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration (reported in binary units).
    Bytes(u64),
    /// Bytes processed per iteration (reported in decimal units).
    BytesDecimal(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Runs the measured closure and accumulates timing.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement.
    Full,
    /// `--quick`: one short measurement batch.
    Quick,
    /// `--test`: run each benchmark exactly once, report no timing.
    Test,
}

/// The benchmark driver: holds CLI-derived settings and runs benchmarks.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Full,
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies the benchmark CLI arguments (`--quick`, `--test`, a substring
    /// filter); unknown flags — including the `--bench` cargo appends — are
    /// ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => self.mode = Mode::Quick,
                "--test" => self.mode = Mode::Test,
                _ if arg.starts_with('-') => {}
                _ => self.filter = Some(arg),
            }
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_ref().is_none_or(|f| id.contains(f))
    }

    fn measure<F: FnMut(&mut Bencher)>(&self, id: &str, f: &mut F) {
        if !self.matches(id) {
            return;
        }
        if self.mode == Mode::Test {
            let mut bencher = Bencher {
                iterations: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            println!("{id}: test mode, 1 iteration ... ok");
            return;
        }
        // Calibrate: run once, then scale the batch to the target time.
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let target = match self.mode {
            Mode::Quick => Duration::from_millis(20),
            _ => Duration::from_millis(200),
        };
        let iterations = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let nanos_per_iter = bencher.elapsed.as_nanos() as f64 / iterations as f64;
        println!(
            "{id}: time: [{} / iter] ({iterations} iterations)",
            fmt_time(nanos_per_iter)
        );
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.measure(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            throughput: None,
        }
    }

    /// Prints the closing line (the real crate prints a summary report).
    pub fn final_summary(&self) {
        if self.mode != Mode::Test {
            println!("benchmarks complete");
        }
    }
}

fn fmt_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} us", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id.into());
        self.criterion.measure(&full_id, &mut f);
        self
    }

    /// Runs a benchmark parameterised by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id.into());
        self.criterion
            .measure(&full_id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group function running each target against a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = concat!("Criterion benchmark group `", stringify!($name), "`.")]
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut bencher = Bencher {
            iterations: 17,
            elapsed: Duration::ZERO,
        };
        bencher.iter(|| calls += 1);
        assert_eq!(calls, 17);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("Q8").to_string(), "Q8");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut criterion = Criterion {
            mode: Mode::Test,
            filter: None,
        };
        let mut ran = false;
        {
            let mut group = criterion.benchmark_group("g");
            group.throughput(Throughput::Bytes(1024));
            group.bench_with_input(BenchmarkId::from_parameter("x"), &5u32, |b, v| {
                b.iter(|| *v * 2);
                ran = true;
            });
            group.finish();
        }
        assert!(ran);
    }

    #[test]
    fn filter_matching() {
        let criterion = Criterion {
            mode: Mode::Test,
            filter: Some("pipe".to_string()),
        };
        assert!(criterion.matches("deca_pe_pipeline/Q8"));
        assert!(!criterion.matches("roofsurface"));
    }
}
