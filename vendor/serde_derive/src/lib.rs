//! Offline stub of `serde_derive`.
//!
//! The build environment has no access to crates.io, and this workspace only
//! uses `#[derive(serde::Serialize, serde::Deserialize)]` as forward-looking
//! annotations — nothing serializes through serde yet (reports hand-roll
//! their JSON/text). The derives therefore expand to nothing. Swapping the
//! real serde back in requires no source change: delete `vendor/` and point
//! the workspace dependencies at the registry.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
