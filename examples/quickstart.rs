//! Quickstart: compress a weight matrix, decompress one tile with a DECA PE,
//! check the result against the reference decompressor, and ask the
//! Roof-Surface model what bounds the kernel.
//!
//! Run with: `cargo run --release --example quickstart`

use deca::{DecaConfig, DecaPe};
use deca_compress::{generator::WeightGenerator, CompressionScheme, Compressor, Decompressor};
use deca_kernels::avx_model::software_signature;
use deca_roofsurface::{DecaVopModel, MachineConfig, RoofSurface};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a synthetic FC-layer weight matrix and compress it with
    //    BF8 quantization plus 20 % density unstructured sparsity.
    let scheme = CompressionScheme::bf8_sparse(0.2);
    let weights = WeightGenerator::new(2024).dense_matrix(64, 128);
    let compressed = Compressor::new(scheme).compress_matrix(&weights)?;
    println!(
        "compressed {} ({} tiles): {:.1} KiB -> {:.1} KiB ({:.2}x)",
        scheme,
        compressed.tiles().len(),
        weights.bf16_bytes() as f64 / 1024.0,
        compressed.total_bytes() as f64 / 1024.0,
        compressed.compression_factor()
    );

    // 2. Run one tile through a DECA PE and compare against the reference
    //    scalar decompressor.
    let mut pe = DecaPe::new(DecaConfig::baseline());
    let tile = compressed.tile(0, 0);
    let processed = pe.process_tile(tile)?;
    let reference = Decompressor::new().decompress_tile(tile)?;
    assert_eq!(processed.tile, reference, "DECA output must be bit-exact");
    println!(
        "DECA PE decompressed one tile in {} pipeline cycles ({} vOps, {} bubbles)",
        processed.timing.pipeline_cycles, processed.timing.vops, processed.timing.bubbles
    );

    // 3. Ask the Roof-Surface model what bounds this kernel on an HBM SPR,
    //    with software decompression and with DECA.
    let machine = MachineConfig::spr_hbm();
    let cpu_surface = RoofSurface::for_cpu(&machine);
    let deca_surface = RoofSurface::for_deca(&machine);
    let sw_sig = software_signature(&scheme);
    let deca_sig = DecaVopModel::BASELINE.signature(&scheme);
    println!(
        "software kernel: {} bound, {:.2} TFLOPS at N=4",
        cpu_surface.bounding_factor(&sw_sig),
        cpu_surface.flops(&sw_sig, 4) / 1e12
    );
    println!(
        "DECA kernel:     {} bound, {:.2} TFLOPS at N=4",
        deca_surface.bounding_factor(&deca_sig),
        deca_surface.flops(&deca_sig, 4) / 1e12
    );
    Ok(())
}
