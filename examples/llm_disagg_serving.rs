//! Disaggregated prefill/decode serving on simulated DECA-equipped HBM
//! servers: a four-socket fleet serving a long-document chat mix (mostly
//! short prompts, an occasional 4k-token document) either colocated —
//! every socket runs prefill and decode — or split into a prefill pool
//! and a decode pool with the prefill KV shipped across UPI.
//!
//! Prints the fixed-load p99 TPOT under each deployment (the document
//! prefills stall colocated decode steps; a decode pool never runs them),
//! then the sustained request rate of every pool split at the
//! long-document p99 SLO versus the colocated fleet.
//!
//! Run with: `cargo run --release --example llm_disagg_serving`

use deca_compress::CompressionScheme;
use deca_kernels::Engine;
use deca_llm::{footprint, InterconnectModel, LlmModel};
use deca_roofsurface::MachineConfig;
use deca_serve::{
    best_pool_split, disagg_capacity_search_with, fleet_capacity_search_with, hbm_kv_budget_tokens,
    simulate_disaggregated_with, simulate_fleet_with, CapacitySpec, DisaggSpec, EstimatorCostModel,
    KvShipSpec, LengthDistribution, RequestRecord, ServingConfig, ServingSimulator, SloTarget,
    WorkloadSpec,
};

const MAX_BATCH: usize = 16;
const BLOCK_SIZE: usize = 32;
const SOCKETS: usize = 4;
const REQUESTS: usize = 48;
/// Long-document SLO: a 4k-token prefill alone takes seconds, so TTFT
/// gets a document budget; TPOT keeps the interactive bound — streaming
/// must stay fluid once the first token is out.
const DOC_TTFT_S: f64 = 12.0;

fn doc_workload(rate: f64) -> WorkloadSpec {
    WorkloadSpec {
        arrivals: deca_serve::ArrivalProcess::Poisson { rate_per_sec: rate },
        prompt_lengths: LengthDistribution::Bimodal {
            short: 256,
            long: 4096,
            long_fraction: 0.15,
        },
        output_lengths: LengthDistribution::Uniform { min: 64, max: 192 },
        requests: REQUESTS,
        seed: 41,
    }
}

fn p99(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[((sorted.len() as f64 - 1.0) * 0.99).round() as usize]
}

/// Fixed load: the same trace under each deployment.
fn fixed_load_table(proto: &EstimatorCostModel, config: &ServingConfig, ship: KvShipSpec) {
    let rate = 2.0;
    let trace = doc_workload(rate).generate();
    println!(
        "\n-- fixed load: {rate:.1} req/s, {} requests, DECA --",
        trace.len()
    );
    println!(
        "{:<12} {:>9} {:>9} {:>13}",
        "deployment", "TTFT p99", "TPOT p99", "KV transfers"
    );
    let fleet = simulate_fleet_with(&mut || proto.clone(), config, SOCKETS, &trace);
    let records = fleet.records();
    let ttft: Vec<f64> = records.iter().map(RequestRecord::ttft_s).collect();
    let tpot: Vec<f64> = records.iter().map(RequestRecord::tpot_s).collect();
    println!(
        "{:<12} {:>8.2}s {:>7.1}ms {:>13}",
        "colocated",
        p99(&ttft),
        p99(&tpot) * 1e3,
        "-"
    );
    for prefill in 1..SOCKETS {
        let spec = DisaggSpec {
            prefill_replicas: prefill,
            decode_replicas: SOCKETS - prefill,
            kv_ship: ship,
        };
        let report = simulate_disaggregated_with(&mut || proto.clone(), config, &spec, &trace);
        let ttft: Vec<f64> = report.records.iter().map(RequestRecord::ttft_s).collect();
        let tpot: Vec<f64> = report.records.iter().map(RequestRecord::tpot_s).collect();
        let kv_transfers: u64 = report
            .decode
            .reports
            .iter()
            .filter_map(|r| r.paged.map(|p| p.kv_transfers))
            .sum();
        println!(
            "{:<12} {:>8.2}s {:>7.1}ms {:>13}",
            format!("{}p+{}d", prefill, SOCKETS - prefill),
            p99(&ttft),
            p99(&tpot) * 1e3,
            kv_transfers,
        );
    }
}

/// Capacity: the rate each deployment sustains at the document SLO.
fn capacity_table(
    proto: &EstimatorCostModel,
    config: &ServingConfig,
    ship: KvShipSpec,
    slo: SloTarget,
) {
    let spec = CapacitySpec {
        slo,
        requests: REQUESTS,
        seed: 41,
        min_rate: 0.1,
        max_rate: 32.0,
        iterations: 5,
    };
    println!(
        "\n-- capacity at p99 TTFT <= {:.0} s / TPOT <= {:.0} ms --",
        slo.ttft_s,
        slo.tpot_s * 1e3
    );
    let colocated = fleet_capacity_search_with(
        || proto.clone(),
        config,
        SOCKETS,
        &spec,
        |rate| doc_workload(rate).generate(),
    );
    println!(
        "  colocated x{SOCKETS}     sustains {:>5.2} req/s (p99 TPOT {:.0} ms)",
        colocated.max_rate_rps,
        colocated.p99_tpot_s * 1e3
    );
    let splits = disagg_capacity_search_with(
        || proto.clone(),
        config,
        SOCKETS,
        ship,
        &spec,
        |rate| doc_workload(rate).generate(),
    );
    for split in &splits {
        println!(
            "  {}p+{}d           sustains {:>5.2} req/s (p99 TPOT {:.0} ms)",
            split.prefill_replicas,
            split.decode_replicas,
            split.capacity.max_rate_rps,
            split.capacity.p99_tpot_s * 1e3
        );
    }
    let best = best_pool_split(&splits).expect("at least one split");
    if colocated.max_rate_rps > 0.0 {
        println!(
            "  => best split ({}p+{}d) serves {:.2}x the colocated fleet",
            best.prefill_replicas,
            best.decode_replicas,
            best.capacity.max_rate_rps / colocated.max_rate_rps
        );
    }
}

fn main() {
    let machine = MachineConfig::spr_hbm();
    let model = LlmModel::llama2_70b();
    let scheme = CompressionScheme::bf8_sparse(0.05);
    let slo = SloTarget {
        ttft_s: DOC_TTFT_S,
        ..SloTarget::interactive()
    };
    let budget = hbm_kv_budget_tokens(&model, &scheme).expect("Q8_5% fits in HBM");
    let config = ServingConfig::paged(MAX_BATCH, budget, BLOCK_SIZE);
    let kv_bytes_per_token = footprint::kv_cache_bytes_per_sequence(&model, 1) as f64;
    let ship = KvShipSpec::over_interconnect(kv_bytes_per_token, &InterconnectModel::spr_upi());

    println!(
        "== {} on {} x{SOCKETS} — disaggregated prefill/decode view, DECA {} ==\n",
        model.name(),
        machine.name,
        scheme.label()
    );
    println!(
        "KV shipped per 4k-token document: {:.2} GB over UPI ({:.0} ms)",
        kv_bytes_per_token * 4096.0 / 1e9,
        ship.transfer_seconds(4096) * 1e3,
    );

    // Warm one estimator on a single mid-rate replica, then clone it into
    // every socket of every probe: the memoized (batch, context) entries
    // are shared instead of re-derived per replica.
    let proto = {
        let cost = EstimatorCostModel::new(
            machine.clone(),
            model.clone(),
            scheme,
            Engine::deca_default(),
        );
        let mut sim = ServingSimulator::new(cost, config);
        sim.run(&doc_workload(1.0).generate());
        sim.into_cost_model()
    };

    fixed_load_table(&proto, &config, ship);
    capacity_table(&proto, &config, ship, slo);
}
