//! Multi-socket sharded serving on the simulated DECA-equipped HBM fleet:
//! what happens when Llama2-70B stops fitting one socket.
//!
//! 1. per-socket footprints: which Table 4 schemes fit one socket's 64 GB
//!    HBM — with a production KV working set on top of the weights,
//! 2. the TP scaling curve: decode latency versus tensor-parallel degree
//!    over a UPI-class interconnect (all-reduce per TP GeMM),
//! 3. the fleet answer: minimum sockets that hold the working set *and*
//!    meet the interactive p99 SLO, software decompression versus DECA.
//!
//! Run with: `cargo run --release --example llm_sharding`

use deca_compress::CompressionScheme;
use deca_kernels::Engine;
use deca_llm::{parallel, InterconnectModel, LlmModel, ShardSpec, ShardedEstimator};
use deca_roofsurface::MachineConfig;
use deca_serve::{
    sharding_sweep, ArrivalProcess, LengthDistribution, ShardingSearchSpec, SloTarget, WorkloadSpec,
};

/// 16 concurrent sequences at 8 k context: the KV working set a production
/// replica must hold.
const WORKING_SET_TOKENS: usize = 16 * 8192;
const MAX_BATCH: usize = 16;

fn plans() -> Vec<ShardSpec> {
    vec![
        ShardSpec::single(),
        ShardSpec::tp(2),
        ShardSpec::tp(4),
        ShardSpec::tp(8),
    ]
}

/// 1. Per-socket weight bytes and KV budgets per plan.
fn footprint_table(model: &LlmModel, schemes: &[CompressionScheme]) {
    println!(
        "{:<8} {:>14} {:>12}  (per sharding plan)",
        "scheme", "weights/socket", "KV budget"
    );
    for scheme in schemes {
        for spec in plans() {
            let weights_gb = parallel::sharded_weight_bytes_per_socket(model, scheme, &spec) / 1e9;
            let budget = parallel::sharded_max_kv_tokens(model, scheme, &spec)
                .map_or("weights don't fit".to_string(), |t| format!("{t} tok"));
            let holds = parallel::sharded_max_kv_tokens(model, scheme, &spec)
                .is_some_and(|t| t as usize >= WORKING_SET_TOKENS);
            println!(
                "{:<8} {weights_gb:>12.1}GB {budget:>16}  {spec}{}",
                scheme.label(),
                if holds { "  <- holds working set" } else { "" }
            );
        }
    }
}

/// 2. Decode latency versus TP degree at the working-set context.
fn tp_scaling_curve(machine: &MachineConfig, model: &LlmModel, scheme: &CompressionScheme) {
    println!(
        "\n-- TP scaling of the decode step ({} {}, batch {MAX_BATCH}, context 8192, UPI links) --",
        model.name(),
        scheme.label()
    );
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "plan", "software", "DECA", "comm%"
    );
    for spec in plans() {
        let estimator = ShardedEstimator::new(machine.clone(), spec, InterconnectModel::spr_upi());
        let sw = estimator.next_token(model, scheme, Engine::software(), MAX_BATCH, 8192);
        let deca = estimator.next_token(model, scheme, Engine::deca_default(), MAX_BATCH, 8192);
        println!(
            "{:<10} {:>10.1}ms {:>10.1}ms {:>9.1}%",
            spec.to_string(),
            sw.total_ms(),
            deca.total_ms(),
            deca.comm_fraction() * 100.0
        );
    }
}

/// 3. Minimum sockets to hold the working set and meet the p99 SLO.
fn min_socket_table(machine: &MachineConfig, model: &LlmModel, schemes: &[CompressionScheme]) {
    let search = ShardingSearchSpec {
        slo: SloTarget::interactive(),
        workload: WorkloadSpec {
            arrivals: ArrivalProcess::Poisson { rate_per_sec: 0.5 },
            prompt_lengths: LengthDistribution::Bimodal {
                short: 256,
                long: 2048,
                long_fraction: 0.1,
            },
            output_lengths: LengthDistribution::Uniform { min: 64, max: 192 },
            requests: 40,
            seed: 17,
        },
        max_batch: MAX_BATCH,
        required_kv_tokens: WORKING_SET_TOKENS,
    };
    println!(
        "\n-- min sockets to hold {WORKING_SET_TOKENS} KV tokens and meet p99 TTFT <= {:.0} s / TPOT <= {:.0} ms --",
        search.slo.ttft_s,
        search.slo.tpot_s * 1e3
    );
    println!("{:<8} {:>16} {:>16}", "scheme", "software", "DECA");
    for scheme in schemes {
        let min_for = |engine| {
            sharding_sweep(
                machine,
                model,
                scheme,
                engine,
                InterconnectModel::spr_upi(),
                &plans(),
                &search,
            )
            .into_iter()
            .filter(|r| r.feasible)
            .min_by_key(|r| r.spec.sockets())
            .map_or("> 8 sockets".to_string(), |r| {
                format!("{} ({}s)", r.spec, r.spec.sockets())
            })
        };
        println!(
            "{:<8} {:>16} {:>16}",
            scheme.label(),
            min_for(Engine::software()),
            if scheme.is_uncompressed() {
                "-".to_string()
            } else {
                min_for(Engine::deca_default())
            }
        );
    }
}

fn main() {
    let machine = MachineConfig::spr_hbm();
    let model = LlmModel::llama2_70b();
    let schemes = [
        CompressionScheme::bf16_dense(),
        CompressionScheme::bf8_dense(),
        CompressionScheme::mxfp4(),
    ];
    println!(
        "== {} sharded across {} sockets — TP/PP over a UPI-class interconnect ==\n",
        model.name(),
        machine.name
    );
    footprint_table(&model, &schemes);
    tp_scaling_curve(&machine, &model, &CompressionScheme::mxfp4());
    min_socket_table(&machine, &model, &schemes);
}
