//! Paged KV-cache serving scenario on the simulated DECA-equipped HBM
//! server: a prefix-heavy chat fleet (shared system prompt, multi-turn
//! conversations) served under the three admission policies —
//!
//! 1. reserve-up-front continuous batching (the pre-paged baseline),
//! 2. paged: block-granular on-demand KV allocation,
//! 3. paged + radix-tree prefix sharing,
//!
//! printing KV utilization, prefix hit rate, preemption counters, the
//! capacity delta at the interactive p99 SLO, and — under an overloaded
//! pool with a DDR tier behind it — the swap/demotion/promotion counters
//! of the tiered KV offload path.
//!
//! Run with: `cargo run --release --example llm_paged_serving`

use deca_compress::CompressionScheme;
use deca_kernels::Engine;
use deca_llm::{footprint, LlmModel};
use deca_roofsurface::MachineConfig;
use deca_serve::{
    capacity_search_warm, hbm_kv_budget_tokens, CapacitySpec, EstimatorCostModel, KvTierModel,
    ServingConfig, ServingSimulator, SharedPrefixChatSpec, SloTarget,
};

const MAX_BATCH: usize = 16;
const BLOCK_SIZE: usize = 32;
const SESSIONS: usize = 24;

fn policies(budget: usize) -> [(&'static str, ServingConfig); 3] {
    let paged = ServingConfig::paged(MAX_BATCH, budget, BLOCK_SIZE);
    [
        (
            "reserve-up-front",
            ServingConfig::continuous(MAX_BATCH, budget),
        ),
        ("paged", paged),
        ("paged+prefix", paged.with_prefix_sharing(true)),
    ]
}

fn cost_model(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: CompressionScheme,
) -> EstimatorCostModel {
    EstimatorCostModel::new(
        machine.clone(),
        model.clone(),
        scheme,
        Engine::deca_default(),
    )
}

/// Fixed-load comparison: the same conversation trace under each policy.
fn policy_table(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: CompressionScheme,
    workload: &SharedPrefixChatSpec,
    budget: usize,
    slo: &SloTarget,
) {
    let trace = workload.generate();
    println!(
        "\n-- {} conversations x {} turns ({} requests, {:.0}-token system prompt), DECA {} --",
        workload.sessions,
        workload.turns_per_session,
        trace.len(),
        workload.system_prompt_tokens as f64,
        scheme.label()
    );
    println!(
        "{:<17} {:>9} {:>9} {:>9} {:>8} {:>9} {:>11} {:>9}",
        "policy", "TTFT p99", "E2E p99", "goodput", "KV occ", "hit rate", "preemptions", "KV frag"
    );
    for (name, config) in policies(budget) {
        let mut server = ServingSimulator::new(cost_model(machine, model, scheme), config);
        let report = server.run(&trace);
        let m = report.metrics();
        let (hit, preempt, frag) = report.paged.map_or((0.0, 0, 0.0), |p| {
            (
                p.prefix_hit_rate(),
                p.preemptions,
                p.mean_internal_fragmentation,
            )
        });
        println!(
            "{name:<17} {:>8.2}s {:>8.2}s {:>6.2} r/s {:>7.1}% {:>8.1}% {:>11} {:>8.1}%",
            m.ttft.p99_s,
            m.e2e.p99_s,
            report.goodput_rps(slo),
            report.mean_kv_occupancy * 100.0,
            hit * 100.0,
            preempt,
            frag * 100.0,
        );
    }
}

/// Capacity delta: sessions/sec each policy sustains at the p99 SLO.
fn capacity_table(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: CompressionScheme,
    workload: &SharedPrefixChatSpec,
    budget: usize,
    slo: &SloTarget,
) {
    let spec = CapacitySpec {
        slo: *slo,
        requests: workload.requests(),
        seed: workload.seed,
        min_rate: 0.05,
        max_rate: 16.0,
        iterations: 6,
    };
    println!(
        "\n-- capacity at p99 TTFT <= {:.0} s / TPOT <= {:.0} ms --",
        slo.ttft_s,
        slo.tpot_s * 1e3
    );
    let mut rates = Vec::new();
    // One warm cost model across the three policy searches.
    let mut cost = cost_model(machine, model, scheme);
    for (name, config) in policies(budget) {
        let result = capacity_search_warm(&mut cost, &config, &spec, |rate| {
            workload.with_rate(rate).generate()
        });
        println!(
            "  {name:<17} sustains {:>5.2} sessions/s (p99 TTFT {:.2}s)",
            result.max_rate_rps, result.p99_ttft_s
        );
        rates.push(result.max_rate_rps);
    }
    if rates[0] > 0.0 {
        println!(
            "  => paged+prefix serves {:.2}x the conversations per socket",
            rates[2] / rates[0]
        );
    }
}

/// A deliberately tiny pool under the same load: preemption-by-recompute
/// and prefix-cache eviction both fire, and the trace still drains. Then
/// the same pool with a DDR offload tier behind it: preempted and evicted
/// KV swaps out and comes back instead of being re-prefilled.
fn overload_demo(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: CompressionScheme,
    workload: &SharedPrefixChatSpec,
) {
    let pool_tokens = 2_048;
    let trace = workload.with_rate(4.0).generate();
    let config = ServingConfig::paged(MAX_BATCH, pool_tokens, BLOCK_SIZE).with_prefix_sharing(true);
    let mut server = ServingSimulator::new(cost_model(machine, model, scheme), config);
    let report = server.run(&trace);
    let paged = report.paged.expect("paged run");
    println!(
        "\n-- overload: {}-token pool ({} blocks), burst of {} conversations --",
        pool_tokens, paged.total_blocks, workload.sessions
    );
    println!(
        "  completed {} + rejected {} == offered {} | preemptions {} | cache evictions {} | hit rate {:.1}%",
        report.completed(),
        report.rejected,
        trace.len(),
        paged.preemptions,
        paged.cache_evictions,
        paged.prefix_hit_rate() * 100.0,
    );
    assert_eq!(report.completed() + report.rejected, trace.len());

    let block_kv_bytes = footprint::kv_cache_bytes_per_sequence(model, BLOCK_SIZE) as f64;
    let tiered = config.with_tiers(KvTierModel::ddr_only(block_kv_bytes, 1_024));
    let mut server = ServingSimulator::new(cost_model(machine, model, scheme), tiered);
    let report = server.run(&trace);
    let paged = report.paged.expect("paged run");
    println!("  with a DDR tier behind the pool:");
    println!(
        "  swap-outs {} | swap-ins {} | demotions {} | promotions {} | peak DDR blocks {} | prefilled tokens {}",
        paged.swap_outs,
        paged.swap_ins,
        paged.tier_demotions,
        paged.tier_promotions,
        paged.peak_ddr_blocks,
        paged.prefix_uncached_tokens,
    );
}

fn main() {
    let machine = MachineConfig::spr_hbm();
    let model = LlmModel::llama2_70b();
    let scheme = CompressionScheme::bf8_sparse(0.05);
    let slo = SloTarget::interactive();
    let workload = SharedPrefixChatSpec {
        turns_per_session: 3,
        ..SharedPrefixChatSpec::fleet(0.25, SESSIONS, 29)
    };

    println!(
        "== {} on {} — paged KV-cache serving view ==\n",
        model.name(),
        machine.name
    );
    let budget = hbm_kv_budget_tokens(&model, &scheme).expect("Q8_5% fits in HBM");
    println!(
        "HBM KV budget: {budget} tokens = {} blocks of {BLOCK_SIZE} ({}-token blocks hold {:.1} GB of KV)",
        budget / BLOCK_SIZE,
        BLOCK_SIZE,
        footprint::kv_cache_bytes(&model, budget, 1) as f64 / 1e9,
    );

    policy_table(&machine, &model, scheme, &workload, budget, &slo);
    capacity_table(&machine, &model, scheme, &workload, budget, &slo);
    overload_demo(&machine, &model, scheme, &workload);
}
