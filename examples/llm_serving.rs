//! LLM serving scenario: estimate the next-token latency and throughput of
//! Llama2-70B and OPT-66B on an HBM SPR server, with software decompression
//! and with DECA, for the compression schemes of Table 4 — plus the memory
//! footprint check of §8.
//!
//! Run with: `cargo run --release --example llm_serving`

use deca_compress::{CompressionScheme, SchemeSet};
use deca_kernels::Engine;
use deca_llm::{footprint, InferenceEstimator, LlmModel};
use deca_roofsurface::MachineConfig;

fn main() {
    let machine = MachineConfig::spr_hbm();
    let estimator = InferenceEstimator::new(machine);
    for model in [LlmModel::llama2_70b(), LlmModel::opt_66b()] {
        println!(
            "== {} ({:.1} B parameters) ==",
            model.name(),
            model.total_params() as f64 / 1e9
        );
        println!(
            "{:<10} {:>10} {:>14} {:>14} {:>12} {:>10}",
            "scheme", "fits HBM?", "SW next-token", "DECA next-token", "DECA tok/s", "speedup"
        );
        for scheme in SchemeSet::llm_evaluation() {
            let fits = footprint::fits_in_hbm(&model, &scheme);
            let sw = estimator.next_token(&model, &scheme, Engine::software(), 1, 128);
            // DECA does not apply to the uncompressed model — leave the
            // cells empty like Table 4 does.
            let (deca_ms, tok_s, speedup) = if scheme.is_uncompressed() {
                ("-".to_string(), "-".to_string(), "-".to_string())
            } else {
                let deca = estimator.next_token(&model, &scheme, Engine::deca_default(), 1, 128);
                (
                    format!("{:.1}ms", deca.total_ms()),
                    format!("{:.1}", deca.tokens_per_second()),
                    format!("{:.2}x", sw.total_ms() / deca.total_ms()),
                )
            };
            println!(
                "{:<10} {:>10} {:>12.1}ms {:>14} {:>12} {:>10}",
                scheme.label(),
                if fits { "yes" } else { "no" },
                sw.total_ms(),
                deca_ms,
                tok_s,
                speedup,
            );
        }
        // Batch-16 serving point for the most aggressive scheme.
        let scheme = CompressionScheme::bf8_sparse(0.05);
        let batch16 = estimator.next_token(&model, &scheme, Engine::deca_default(), 16, 128);
        println!(
            "batch 16, {}: {:.1} ms/token, {:.1} tokens/s aggregate\n",
            scheme.label(),
            batch16.total_ms(),
            batch16.tokens_per_second()
        );
    }
}
