//! LLM serving scenario on the simulated DECA-equipped HBM server — now a
//! full continuous-batching serving simulation (`deca-serve`) instead of a
//! single-batch latency table:
//!
//! 1. footprint + KV budget: how much HBM headroom each Table 4 scheme
//!    leaves for the KV cache,
//! 2. a Poisson chat workload served with continuous batching — TTFT /
//!    TPOT / end-to-end percentiles and goodput, DECA vs software
//!    decompression,
//! 3. continuous vs static batching on a bursty trace,
//! 4. the fleet headline: requests/sec per socket at a p99 SLO.
//!
//! Run with: `cargo run --release --example llm_serving`

use deca_compress::CompressionScheme;
use deca_kernels::Engine;
use deca_llm::{footprint, LlmModel};
use deca_roofsurface::MachineConfig;
use deca_serve::{
    capacity_search, hbm_kv_budget_tokens, CapacitySpec, EstimatorCostModel, SchedulerKind,
    ServingConfig, ServingSimulator, SloTarget, WorkloadSpec,
};

const MAX_BATCH: usize = 16;

/// 1. HBM headroom per scheme → the scheduler's KV budget.
fn kv_budget_table(model: &LlmModel) {
    println!(
        "{:<10} {:>12} {:>14} {:>16}",
        "scheme", "weights GB", "headroom GB", "KV budget (tok)"
    );
    for scheme in [
        CompressionScheme::bf16_dense(),
        CompressionScheme::mxfp4(),
        CompressionScheme::bf8_sparse(0.2),
        CompressionScheme::bf8_sparse(0.05),
    ] {
        let weights_gb = footprint::model_footprint_bytes(model, &scheme) / 1e9;
        let headroom_gb = footprint::hbm_headroom_bytes(model, &scheme) / 1e9;
        let budget = hbm_kv_budget_tokens(model, &scheme)
            .map_or("does not fit".to_string(), |t| t.to_string());
        println!(
            "{:<10} {weights_gb:>12.1} {headroom_gb:>14.1} {budget:>16}",
            scheme.label()
        );
    }
}

/// 2. Poisson chat workload, continuous batching, DECA vs software.
fn poisson_engine_comparison(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: CompressionScheme,
    budget: usize,
    slo: &SloTarget,
) {
    let trace = WorkloadSpec::chat(1.0, 160, 42).generate();
    println!(
        "\n-- continuous batching, {} chat requests at {:.1} req/s, {} --",
        trace.len(),
        trace.offered_rate(),
        scheme.label()
    );
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>11}",
        "engine", "TTFT p50", "TTFT p99", "TPOT p99", "E2E p99", "tok/s", "goodput"
    );
    for (name, engine) in [
        ("software", Engine::software()),
        ("DECA", Engine::deca_default()),
    ] {
        let cost = EstimatorCostModel::new(machine.clone(), model.clone(), scheme, engine);
        let mut server = ServingSimulator::new(cost, ServingConfig::continuous(MAX_BATCH, budget));
        let report = server.run(&trace);
        let m = report.metrics();
        println!(
            "{name:<14} {:>9.2}s {:>9.2}s {:>8.0}ms {:>9.2}s {:>10.1} {:>7.2} r/s",
            m.ttft.p50_s,
            m.ttft.p99_s,
            m.tpot.p99_s * 1e3,
            m.e2e.p99_s,
            m.tokens_per_second,
            report.goodput_rps(slo),
        );
    }
}

/// 3. Continuous vs static batching on a bursty trace (DECA engine).
fn bursty_scheduler_comparison(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: CompressionScheme,
    budget: usize,
    slo: &SloTarget,
) {
    let bursty = WorkloadSpec::bursty_chat(0.6, 160, 43).generate();
    println!(
        "\n-- bursty trace ({} requests, mean {:.1} req/s), DECA {} --",
        bursty.len(),
        bursty.offered_rate(),
        scheme.label()
    );
    println!(
        "{:<14} {:>10} {:>10} {:>11} {:>12}",
        "scheduler", "TTFT p99", "E2E p99", "goodput", "peak queue"
    );
    // One memoized cost model serves both scheduler runs.
    let mut cost = EstimatorCostModel::new(
        machine.clone(),
        model.clone(),
        scheme,
        Engine::deca_default(),
    );
    for kind in [
        SchedulerKind::ContinuousBatching,
        SchedulerKind::StaticBatching,
    ] {
        let config = ServingConfig::continuous(MAX_BATCH, budget).with_scheduler(kind);
        let mut server = ServingSimulator::new(cost, config);
        let report = server.run(&bursty);
        cost = server.into_cost_model();
        let m = report.metrics();
        println!(
            "{:<14} {:>9.2}s {:>9.2}s {:>7.2} r/s {:>12}",
            kind.to_string(),
            m.ttft.p99_s,
            m.e2e.p99_s,
            report.goodput_rps(slo),
            report.peak_queue_depth,
        );
    }
}

/// 4. Fleet headline: requests/sec per socket at the p99 SLO.
fn fleet_headline(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: CompressionScheme,
    budget: usize,
) {
    let spec = CapacitySpec::chat(128, 7);
    let config = ServingConfig::continuous(MAX_BATCH, budget);
    let sw = capacity_search(machine, model, &scheme, Engine::software(), &config, &spec);
    let deca = capacity_search(
        machine,
        model,
        &scheme,
        Engine::deca_default(),
        &config,
        &spec,
    );
    println!(
        "\nat p99 TTFT <= {:.0} s and p99 TPOT <= {:.0} ms on {} {}:",
        spec.slo.ttft_s,
        spec.slo.tpot_s * 1e3,
        model.name(),
        scheme.label()
    );
    println!(
        "  software decompression sustains {:.2} req/s per socket",
        sw.max_rate_rps
    );
    println!(
        "  DECA sustains                  {:.2} req/s per socket",
        deca.max_rate_rps
    );
    if sw.max_rate_rps > 0.0 {
        println!(
            "  => DECA serves {:.2}x the load per socket",
            deca.max_rate_rps / sw.max_rate_rps
        );
    }
}

fn main() {
    let machine = MachineConfig::spr_hbm();
    let model = LlmModel::llama2_70b();
    println!(
        "== {} on {} — serving-layer view ==\n",
        model.name(),
        machine.name
    );

    kv_budget_table(&model);

    let scheme = CompressionScheme::bf8_sparse(0.05);
    let budget = hbm_kv_budget_tokens(&model, &scheme).expect("Q8_5% fits in HBM");
    let slo = SloTarget::interactive();
    poisson_engine_comparison(&machine, &model, scheme, budget, &slo);
    bursty_scheduler_comparison(&machine, &model, scheme, budget, &slo);
    fleet_headline(&machine, &model, scheme, budget);
}
