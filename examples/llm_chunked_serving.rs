//! Chunked prefill on a simulated DECA-equipped HBM server: a mixed
//! workload of interactive chat turns plus occasional long-document
//! ingestions (4k–12k-token prompts), served with and without the
//! document prefills split into token-budget chunks interleaved with
//! decode at batch-step boundaries.
//!
//! Prints the TPOT-isolation table: the chat lane's p99 TPOT with and
//! without co-resident document prefills, chunked versus not. Unchunked,
//! a burst of documents runs its monolithic prefills back to back and
//! every co-resident decode starves until the whole backlog drains; a
//! 512-token chunk budget hands each decoding chat one token per batch
//! step no matter how deep the document queue is, so short turns finish
//! in a few steps instead of outliving the backlog — the documents pay
//! their prefill in installments.
//!
//! Run with: `cargo run --release --example llm_chunked_serving`

use deca_compress::CompressionScheme;
use deca_kernels::Engine;
use deca_llm::LlmModel;
use deca_roofsurface::MachineConfig;
use deca_serve::{
    hbm_kv_budget_tokens, percentile, DocChatMixSpec, EstimatorCostModel, RequestTrace,
    ServingConfig, ServingSimulator,
};

const MAX_BATCH: usize = 16;
const BLOCK_SIZE: usize = 32;
const CHUNK_BUDGET: usize = 512;
const CHAT_RATE: f64 = 0.25;
const CHAT_REQUESTS: usize = 96;
const SEED: u64 = 41;

struct LaneTails {
    chat_tpot_p99_ms: f64,
    chat_ttft_p99_s: f64,
    doc_ttft_p99_s: Option<f64>,
    chunk_steps: u64,
}

/// One deployment row: the trace under `config`, tails split by lane.
fn run_row(
    proto: &EstimatorCostModel,
    config: ServingConfig,
    mix: &DocChatMixSpec,
    trace: &RequestTrace,
) -> LaneTails {
    let mut sim = ServingSimulator::new(proto.clone(), config);
    let report = sim.run(trace);
    let mut chat_tpot = Vec::new();
    let mut chat_ttft = Vec::new();
    let mut doc_ttft = Vec::new();
    for record in &report.records {
        if mix.is_document(&trace.requests()[record.id]) {
            doc_ttft.push(record.ttft_s());
        } else {
            chat_tpot.push(record.tpot_s());
            chat_ttft.push(record.ttft_s());
        }
    }
    LaneTails {
        chat_tpot_p99_ms: percentile(&chat_tpot, 99.0) * 1e3,
        chat_ttft_p99_s: percentile(&chat_ttft, 99.0),
        doc_ttft_p99_s: (!doc_ttft.is_empty()).then(|| percentile(&doc_ttft, 99.0)),
        chunk_steps: report.chunk_steps,
    }
}

fn print_row(label: &str, tails: &LaneTails) {
    println!(
        "{:<22} {:>12.1} {:>12.2} {:>12} {:>12}",
        label,
        tails.chat_tpot_p99_ms,
        tails.chat_ttft_p99_s,
        tails
            .doc_ttft_p99_s
            .map_or_else(|| "-".to_string(), |s| format!("{s:.2}")),
        if tails.chunk_steps == 0 {
            "-".to_string()
        } else {
            tails.chunk_steps.to_string()
        },
    );
}

fn main() {
    let machine = MachineConfig::spr_hbm();
    let model = LlmModel::llama2_70b();
    let scheme = CompressionScheme::bf8_sparse(0.05);
    let budget = hbm_kv_budget_tokens(&model, &scheme).expect("Q8_5% fits in HBM");
    let config = ServingConfig::paged(MAX_BATCH, budget, BLOCK_SIZE);

    // Short chat turns (autocomplete-style): a turn's decode window fits
    // inside a document backlog, so prefill stalls land directly in the
    // turn's TPOT instead of amortizing away. The default document lane
    // (one per eight chats, 4k–12k tokens at ~25 s of prefill each)
    // arrives in Poisson bursts: unchunked, a burst's prefills run back to
    // back and every co-resident decode starves for the whole backlog.
    let mix = DocChatMixSpec {
        chat_output_tokens: deca_serve::LengthDistribution::Uniform { min: 8, max: 32 },
        ..DocChatMixSpec::fleet(CHAT_RATE, CHAT_REQUESTS, SEED)
    };
    // Same chat lane, no documents: the doc stream is seeded independently,
    // so zeroing it leaves every chat arrival and length untouched.
    let chat_only = DocChatMixSpec {
        doc_requests: 0,
        ..mix
    };
    let mixed_trace = mix.generate();
    let chat_trace = chat_only.generate();

    println!(
        "== {} on {} — chunked prefill TPOT isolation, DECA {} ==\n",
        model.name(),
        machine.name,
        scheme.label()
    );
    println!(
        "{} chat turns at {CHAT_RATE} req/s; {} documents riding along",
        chat_only.chat_requests,
        mixed_trace.len() - chat_trace.len(),
    );

    // Warm one estimator on the mixed trace, then clone it into every row:
    // the memoized (batch, context) entries are shared instead of
    // re-derived per deployment.
    let proto = {
        let cost = EstimatorCostModel::new(
            machine.clone(),
            model.clone(),
            scheme,
            Engine::deca_default(),
        );
        let mut sim = ServingSimulator::new(cost, config);
        sim.run(&mixed_trace);
        sim.into_cost_model()
    };

    println!(
        "\n{:<22} {:>12} {:>12} {:>12} {:>12}",
        "traffic", "chat TPOT", "chat TTFT", "doc TTFT", "chunk steps"
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "", "p99 (ms)", "p99 (s)", "p99 (s)", ""
    );
    let isolated = run_row(&proto, config, &chat_only, &chat_trace);
    print_row("chat only", &isolated);
    let colocated = run_row(&proto, config, &mix, &mixed_trace);
    print_row("chat + docs", &colocated);
    let chunked = run_row(
        &proto,
        config.with_chunked_prefill(Some(CHUNK_BUDGET)),
        &mix,
        &mixed_trace,
    );
    print_row(&format!("chat + docs, {CHUNK_BUDGET}-chunk"), &chunked);

    let gap = colocated.chat_tpot_p99_ms - isolated.chat_tpot_p99_ms;
    if gap > 0.0 {
        let recovered = (colocated.chat_tpot_p99_ms - chunked.chat_tpot_p99_ms) / gap;
        println!(
            "\n=> co-resident documents add {gap:.1} ms to the chat p99 TPOT; \
             a {CHUNK_BUDGET}-token chunk budget recovers {:.0}% of it",
            recovered * 100.0
        );
    }
}
