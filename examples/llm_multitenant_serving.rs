//! Multi-tenant serving on a simulated DECA-equipped HBM server: a mixed
//! trace of Interactive LoRA-chat turns and Batch long jobs, each request
//! pinned to one of twelve tenant adapters, served under QoS priority
//! admission with an anti-starvation aging bound.
//!
//! Prints the per-class service table across three adapter-cache
//! configurations. Adapter weights page through the same block pool as
//! the KV cache and every cache miss is priced as weight traffic (like
//! prefilling the adapter's tokens), so a cache with too few slots for
//! the tenant churn shows up directly in the makespan and both lanes'
//! tails — while a cache sized to the tenant count loads each adapter
//! once and then hits for the rest of the run.
//!
//! Run with: `cargo run --release --example llm_multitenant_serving`

use deca_compress::CompressionScheme;
use deca_kernels::Engine;
use deca_llm::LlmModel;
use deca_roofsurface::MachineConfig;
use deca_serve::{
    hbm_kv_budget_tokens, AdapterModel, EstimatorCostModel, MultiTenantSpec, QosClass, RagSpec,
    ServingConfig, ServingReport, ServingSimulator, SloTarget, WorkloadSpec,
};

const MAX_BATCH: usize = 16;
const BLOCK_SIZE: usize = 32;
const INTERACTIVE_REQUESTS: usize = 48;
const INTERACTIVE_RATE: f64 = 0.25;
const ADAPTER_TOKENS: usize = 64;
const QOS_AGING: usize = 8;
const RAG_DOCUMENTS: usize = 8;
const SEED: u64 = 47;

fn print_row(label: &str, report: &ServingReport) {
    let interactive = report.class_metrics(QosClass::Interactive);
    let batch = report.class_metrics(QosClass::Batch);
    let adapters = &report.adapters;
    println!(
        "{:<14} {:>10.1} {:>10.2} {:>10.2} {:>8} {:>8} {:>9.3}",
        label,
        report.makespan_s,
        interactive.ttft.p99_s,
        batch.ttft.p99_s,
        adapters.cache_loads,
        adapters.evictions,
        adapters.hit_rate(),
    );
}

fn main() {
    let machine = MachineConfig::spr_hbm();
    let model = LlmModel::llama2_70b();
    let scheme = CompressionScheme::bf8_sparse(0.05);
    let budget = hbm_kv_budget_tokens(&model, &scheme).expect("Q8_5% fits in HBM");
    let slo = SloTarget::interactive();

    let mix = MultiTenantSpec::fleet(INTERACTIVE_RATE, INTERACTIVE_REQUESTS, SEED);
    let trace = mix.generate();
    println!(
        "== {} on {} — multi-tenant serving, DECA {} ==\n",
        model.name(),
        machine.name,
        scheme.label()
    );
    println!(
        "{} Interactive chats + {} Batch jobs across {} tenant adapters, aging bound {QOS_AGING}",
        mix.interactive_requests, mix.batch_requests, mix.tenants,
    );

    // Warm one estimator on the mixed trace, then clone it into every
    // row: the memoized (batch, context) entries are shared instead of
    // re-derived per cache configuration.
    let config = ServingConfig::paged(MAX_BATCH, budget, BLOCK_SIZE).with_qos_aging(QOS_AGING);
    let proto = {
        let cost = EstimatorCostModel::new(
            machine.clone(),
            model.clone(),
            scheme,
            Engine::deca_default(),
        );
        let mut sim = ServingSimulator::new(cost, config);
        sim.run(&trace);
        sim.into_cost_model()
    };

    println!(
        "\n{:<14} {:>10} {:>10} {:>10} {:>8} {:>8} {:>9}",
        "adapter cache", "makespan", "int TTFT", "bat TTFT", "loads", "evicts", "hit rate"
    );
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>8} {:>8} {:>9}",
        "", "(s)", "p99 (s)", "p99 (s)", "", "", ""
    );
    let mut qos_report = None;
    for (label, adapters) in [
        ("no adapters", AdapterModel::disabled()),
        ("2 slots", AdapterModel::new(ADAPTER_TOKENS, 2)),
        ("12 slots", AdapterModel::new(ADAPTER_TOKENS, mix.tenants)),
    ] {
        let mut sim = ServingSimulator::new(proto.clone(), config.with_adapters(adapters));
        let report = sim.run(&trace);
        print_row(label, &report);
        if label == "12 slots" {
            qos_report = Some(report);
        }
    }

    let report = qos_report.expect("the 12-slot row ran");
    println!(
        "\nQoS admission: {} Interactive + {} Batch admitted, {} bypasses, \
         {} aging promotions, longest Interactive run {} (bound {QOS_AGING})",
        report.qos.interactive_admitted,
        report.qos.batch_admitted,
        report.qos.interactive_bypasses,
        report.qos.aging_promotions,
        report.qos.peak_interactive_run,
    );
    println!(
        "per-class goodput at the interactive SLO: {:.2} req/s Interactive, \
         {:.2} req/s Batch",
        report.class_goodput_rps(QosClass::Interactive, &slo),
        report.class_goodput_rps(QosClass::Batch, &slo),
    );

    // The tenant workloads' other axis: shared-prefix reuse. A RAG corpus
    // (eight sessions per document) turns its documents into radix-cache
    // hits that unique-prompt chat cannot get.
    let prefix_config =
        ServingConfig::paged(MAX_BATCH, budget, BLOCK_SIZE).with_prefix_sharing(true);
    let rag = RagSpec::fleet(INTERACTIVE_RATE, RAG_DOCUMENTS, SEED);
    let chat = WorkloadSpec::chat(INTERACTIVE_RATE, rag.requests(), SEED);
    let hit_rate = |trace: &deca_serve::RequestTrace| {
        let mut sim = ServingSimulator::new(proto.clone(), prefix_config);
        let report = sim.run(trace);
        report.paged.expect("paged run").prefix_hit_rate()
    };
    let rag_hits = hit_rate(&rag.generate());
    let chat_hits = hit_rate(&chat.generate());
    println!(
        "\n=> RAG sessions over {RAG_DOCUMENTS} shared documents reuse {:.0}% of their prompt \
         tokens from the prefix cache; unique-prompt chat reuses {:.0}%",
        rag_hits * 100.0,
        chat_hits * 100.0,
    );
}
