//! Compressed-GeMM speedup sweep: simulate the paper's twelve compression
//! schemes on the HBM SPR machine and compare the libxsmm-style software
//! kernel, DECA, and the roofline-optimal bound (the experiment behind
//! Fig. 13).
//!
//! Run with: `cargo run --release --example compressed_gemm_speedup`

use deca_compress::SchemeSet;
use deca_kernels::{CompressedGemmExecutor, Engine};
use deca_roofsurface::MachineConfig;

fn main() {
    let machine = MachineConfig::spr_hbm();
    let executor = CompressedGemmExecutor::new(machine.clone());
    let baseline = executor.uncompressed_baseline(1);
    println!(
        "uncompressed BF16 baseline on {}: {:.2} TFLOPS at N=1\n",
        machine.name, baseline.tflops
    );
    println!(
        "{:<10} {:>14} {:>10} {:>10} {:>12}",
        "kernel", "software-only", "DECA", "optimal", "DECA vs SW"
    );
    for scheme in SchemeSet::paper_evaluation() {
        let sw = executor.run(&scheme, Engine::software(), 1);
        let deca = executor.run(&scheme, Engine::deca_default(), 1);
        let optimal = executor.optimal_tflops(&scheme, 1);
        println!(
            "{:<10} {:>13.2}x {:>9.2}x {:>9.2}x {:>11.2}x",
            scheme.label(),
            sw.speedup_over(&baseline),
            deca.speedup_over(&baseline),
            optimal / baseline.tflops,
            deca.speedup_over(&sw),
        );
    }
    println!("\nUtilization of the most compressed kernel (Q8_5%) with DECA:");
    let q8_5 = deca_compress::CompressionScheme::bf8_sparse(0.05);
    let stats = executor.run(&q8_5, Engine::deca_default(), 1).stats;
    println!("  {}", stats.utilization_report());
}
