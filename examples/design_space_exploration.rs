//! Sizing a DECA PE for a new machine with the Roof-Surface model: sweep
//! `{W, L}` candidates, find the cheapest sizing for which no kernel stays
//! vector-bound, and visualize the resulting BORD (the §9.2 methodology
//! applied to a hypothetical next-generation part with more bandwidth).
//!
//! Run with: `cargo run --release --example design_space_exploration`

use deca_compress::SchemeSet;
use deca_roofsurface::{Bord, DecaVopModel, DesignSpaceExploration, MachineConfig, RoofSurface};

fn main() {
    // A hypothetical future part: 64 cores and 1.5 TB/s of memory bandwidth.
    let machine = MachineConfig {
        name: "NextGen-HBM".to_string(),
        cores: 64,
        memory_bandwidth_gbps: 1500.0,
        ..MachineConfig::spr_hbm()
    };
    println!(
        "machine: {} — {} cores, {} GB/s, MOS {:.2e} tile-ops/s, DECA VOS {:.2e} vOps/s",
        machine.name,
        machine.cores,
        machine.memory_bandwidth_gbps,
        machine.mos(),
        machine.deca_vos()
    );

    let schemes = SchemeSet::paper_evaluation();
    let dse = DesignSpaceExploration::new(machine.clone(), schemes.clone(), 4);

    println!(
        "\n{:<14} {:>10} {:>12} {:>16}",
        "sizing", "cost (B)", "min TFLOPS", "VEC-bound kernels"
    );
    for candidate in DesignSpaceExploration::default_grid() {
        let outcome = dse.evaluate(candidate);
        println!(
            "{:<14} {:>10} {:>12.2} {:>16}",
            candidate.to_string(),
            outcome.point.cost,
            outcome.min_tflops,
            outcome.vec_bound_kernels.len()
        );
    }

    match dse.recommend(&DesignSpaceExploration::default_grid()) {
        Some(pick) => {
            println!(
                "\nrecommended sizing for {}: {} (cost proxy {} B, geomean {:.2} TFLOPS)",
                machine.name, pick.point.model, pick.point.cost, pick.geomean_tflops
            );
            // Show where the kernels land on the BORD with that sizing.
            let bord = Bord::new(RoofSurface::for_deca(&machine));
            let sigs: Vec<_> = schemes
                .iter()
                .map(|s| pick.point.model.signature(s))
                .collect();
            let points = bord.place_all(&sigs);
            println!("{}", bord.render_ascii(&points, 64, 20));
        }
        None => println!("no candidate in the grid eliminates the vector bottleneck"),
    }

    // For comparison: the paper's SPR-HBM machine recommends {W=32, L=8}.
    let spr_dse = DesignSpaceExploration::new(MachineConfig::spr_hbm(), schemes, 4);
    let spr_pick = spr_dse
        .recommend(&DesignSpaceExploration::default_grid())
        .expect("SPR has a qualifying design");
    assert_eq!(spr_pick.point.model, DecaVopModel::BASELINE);
    println!(
        "(for reference, SPR-HBM recommends {})",
        spr_pick.point.model
    );
}
